//! Datasets for crash prediction (§3.3.3).
//!
//! Converts collected reports into a design matrix: raw counters become
//! `f64` features, always-zero features are discarded up front (the paper
//! drops 27,242 of 30,150 this way), and rows are split into train /
//! cross-validation / test sets with a seeded shuffle.

use crate::scaling::FeatureScaler;
use cbi_reports::Report;
use cbi_sampler::Pcg32;

/// A labeled design matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Row-major feature values.
    pub rows: Vec<Vec<f64>>,
    /// Targets: 0.0 = success, 1.0 = failure.
    pub labels: Vec<f64>,
    /// For each feature column, the original counter index it came from.
    pub feature_counters: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset from reports, keeping only counters that are
    /// nonzero in at least one report ("elimination by universal
    /// falsehood" as a preprocessing step, §3.3.3).
    pub fn from_reports(reports: &[Report]) -> Dataset {
        let Some(first) = reports.first() else {
            return Dataset::default();
        };
        let n = first.counters.len();
        let mut ever = vec![false; n];
        for r in reports {
            for (i, &c) in r.counters.iter().enumerate() {
                if c > 0 {
                    ever[i] = true;
                }
            }
        }
        let feature_counters: Vec<usize> = (0..n).filter(|&i| ever[i]).collect();
        let rows = reports
            .iter()
            .map(|r| {
                feature_counters
                    .iter()
                    .map(|&i| r.counters[i] as f64)
                    .collect()
            })
            .collect();
        let labels = reports.iter().map(|r| r.label.as_target()).collect();
        Dataset {
            rows,
            labels,
            feature_counters,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn feature_count(&self) -> usize {
        self.feature_counters.len()
    }

    /// Number of failure rows.
    pub fn failure_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1.0).count()
    }

    /// Splits into (train, cross-validation, test) with the given row
    /// counts after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `train + cv` exceeds the dataset size; the test set takes
    /// the remainder.
    pub fn split(&self, train: usize, cv: usize, seed: u64) -> (Dataset, Dataset, Dataset) {
        assert!(
            train + cv <= self.len(),
            "split sizes exceed dataset ({} + {cv} > {})",
            train,
            self.len()
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = Pcg32::new(seed);
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        let take = |idx: &[usize]| Dataset {
            rows: idx.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            feature_counters: self.feature_counters.clone(),
        };
        (
            take(&order[..train]),
            take(&order[train..train + cv]),
            take(&order[train + cv..]),
        )
    }

    /// Fits a scaler on this dataset and applies it in place; returns the
    /// scaler so other splits can be transformed consistently.
    pub fn fit_scale(&mut self) -> FeatureScaler {
        let scaler = FeatureScaler::fit(&self.rows);
        scaler.apply(&mut self.rows);
        scaler
    }

    /// Applies a previously fitted scaler in place.
    pub fn scale_with(&mut self, scaler: &FeatureScaler) {
        scaler.apply(&mut self.rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::Label;

    fn reports() -> Vec<Report> {
        vec![
            Report::new(0, Label::Success, vec![0, 1, 0, 4]),
            Report::new(1, Label::Failure, vec![0, 0, 0, 9]),
            Report::new(2, Label::Success, vec![0, 2, 0, 1]),
            Report::new(3, Label::Failure, vec![0, 3, 0, 0]),
        ]
    }

    #[test]
    fn always_zero_features_dropped() {
        let d = Dataset::from_reports(&reports());
        assert_eq!(d.feature_counters, vec![1, 3]);
        assert_eq!(d.feature_count(), 2);
        assert_eq!(d.len(), 4);
        assert_eq!(d.failure_count(), 2);
        assert_eq!(d.rows[0], vec![1.0, 4.0]);
    }

    #[test]
    fn empty_reports_give_empty_dataset() {
        let d = Dataset::from_reports(&[]);
        assert!(d.is_empty());
        assert_eq!(d.feature_count(), 0);
    }

    #[test]
    fn split_partitions_rows() {
        let d = Dataset::from_reports(&reports());
        let (tr, cv, te) = d.split(2, 1, 42);
        assert_eq!(tr.len(), 2);
        assert_eq!(cv.len(), 1);
        assert_eq!(te.len(), 1);
        // All rows accounted for.
        let mut all: Vec<Vec<f64>> = tr.rows.clone();
        all.extend(cv.rows.clone());
        all.extend(te.rows.clone());
        let mut orig = d.rows.clone();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, orig);
    }

    #[test]
    fn split_is_deterministic() {
        let d = Dataset::from_reports(&reports());
        let (a, _, _) = d.split(2, 1, 7);
        let (b, _, _) = d.split(2, 1, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_split_panics() {
        let d = Dataset::from_reports(&reports());
        let _ = d.split(4, 1, 0);
    }

    #[test]
    fn scaling_integrates() {
        let mut d = Dataset::from_reports(&reports());
        let scaler = d.fit_scale();
        let mut other = Dataset::from_reports(&reports());
        other.scale_with(&scaler);
        assert_eq!(d.rows, other.rows);
    }
}
