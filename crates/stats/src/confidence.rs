//! Sampling effectiveness arithmetic (§3.1.3).
//!
//! "Suppose we are interested in an event occurring once per hundred
//! executions.  To achieve 90% confidence of observing this event in at
//! least one run, we need at least
//! ⌈log(1 − 0.90) / log(1 − 1/(100 × 1000))⌉ = 230,258 runs."

/// Number of runs needed to observe, with the given `confidence`, at least
/// one sampled occurrence of an event that occurs in a fraction
/// `event_rate` of runs, under sampling probability `density`.
///
/// Assumes (like the paper) that each run independently yields an observed
/// event with probability `event_rate × density`.
///
/// # Panics
///
/// Panics unless `0 < event_rate <= 1`, `0 < density <= 1`, and
/// `0 < confidence < 1`.
pub fn runs_needed(event_rate: f64, density: f64, confidence: f64) -> u64 {
    assert!(event_rate > 0.0 && event_rate <= 1.0, "event rate in (0,1]");
    assert!(density > 0.0 && density <= 1.0, "density in (0,1]");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");
    let p = event_rate * density;
    if p >= 1.0 {
        return 1;
    }
    ((1.0 - confidence).ln() / (1.0 - p).ln()).ceil() as u64
}

/// Probability of observing the event at least once in `runs` runs.
pub fn detection_probability(event_rate: f64, density: f64, runs: u64) -> f64 {
    let p = (event_rate * density).min(1.0);
    1.0 - (1.0 - p).powf(runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_number_90_percent() {
        // Event 1/100, sampling 1/1000, 90% confidence → 230,258 runs.
        let n = runs_needed(0.01, 0.001, 0.90);
        assert!((230_257..=230_259).contains(&n), "got {n}");
    }

    #[test]
    fn paper_number_99_percent() {
        // Event 1/1000, sampling 1/1000, 99% confidence → 4,605,168 runs.
        let n = runs_needed(0.001, 0.001, 0.99);
        assert!((4_605_167..=4_605_171).contains(&n), "got {n}");
    }

    #[test]
    fn office_xp_arithmetic() {
        // 60M licenses × 2 runs/week ≈ 17,143 runs/minute: 230,258 runs in
        // about 19 minutes, 4,605,168 in under 7 hours — the paper's
        // deployment argument.
        let runs_per_minute = 60_000_000.0 * 2.0 / (7.0 * 24.0 * 60.0);
        let minutes_90 = runs_needed(0.01, 0.001, 0.90) as f64 / runs_per_minute;
        assert!((13.0..=20.0).contains(&minutes_90), "got {minutes_90}");
        let hours_99 = runs_needed(0.001, 0.001, 0.99) as f64 / runs_per_minute / 60.0;
        assert!(hours_99 < 7.0, "got {hours_99}");
    }

    #[test]
    fn detection_probability_matches_inverse() {
        let n = runs_needed(0.01, 0.001, 0.90);
        let p = detection_probability(0.01, 0.001, n);
        assert!((0.90..0.9001).contains(&p), "got {p}");
        let p_fewer = detection_probability(0.01, 0.001, n / 2);
        assert!(p_fewer < 0.90);
    }

    #[test]
    fn dense_sampling_needs_fewer_runs() {
        let sparse = runs_needed(0.01, 0.001, 0.9);
        let dense = runs_needed(0.01, 0.01, 0.9);
        assert!(dense < sparse);
        assert_eq!(runs_needed(1.0, 1.0, 0.9), 1);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_bad_confidence() {
        let _ = runs_needed(0.01, 0.001, 1.0);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_bad_density() {
        let _ = runs_needed(0.01, 0.0, 0.9);
    }
}
