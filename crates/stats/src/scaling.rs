//! Feature scaling (§3.3.3).
//!
//! "To make the magnitude of the β parameters comparable, the feature
//! values must be on the same scale.  Hence all the input features are
//! shifted and scaled to lie on the interval \[0, 1\], then normalized to
//! have unit sample variance."

/// Per-feature affine scaling parameters, fitted on a training set.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
    std_devs: Vec<f64>,
}

impl FeatureScaler {
    /// Fits min/max and post-rescale standard deviation on `rows`.
    pub fn fit(rows: &[Vec<f64>]) -> FeatureScaler {
        let d = rows.first().map_or(0, Vec::len);
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges: Vec<f64> = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();

        // Sample std-dev of the [0,1]-rescaled values.
        let n = rows.len().max(1) as f64;
        let mut sums = vec![0.0; d];
        let mut sq_sums = vec![0.0; d];
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                let u = (v - mins[j]) / ranges[j];
                sums[j] += u;
                sq_sums[j] += u * u;
            }
        }
        let std_devs = (0..d)
            .map(|j| {
                let mean = sums[j] / n;
                let var = (sq_sums[j] / n - mean * mean).max(0.0);
                let sd = var.sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        FeatureScaler {
            mins,
            ranges,
            std_devs,
        }
    }

    /// Number of features this scaler was fitted on.
    pub fn feature_count(&self) -> usize {
        self.mins.len()
    }

    /// Scales one row in place.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the fitted feature count.
    pub fn apply_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.mins.len(), "feature count mismatch");
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((*v - self.mins[j]) / self.ranges[j]) / self.std_devs[j];
        }
    }

    /// Scales every row in place.
    pub fn apply(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.apply_row(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_training_features_have_unit_variance() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, (i * i) as f64, 5.0])
            .collect();
        let scaler = FeatureScaler::fit(&rows);
        let mut scaled = rows.clone();
        scaler.apply(&mut scaled);
        for j in 0..2 {
            let n = scaled.len() as f64;
            let mean = scaled.iter().map(|r| r[j]).sum::<f64>() / n;
            let var = scaled.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            assert!((var - 1.0).abs() < 1e-9, "feature {j} variance {var}");
        }
    }

    #[test]
    fn constant_features_are_left_finite() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = FeatureScaler::fit(&rows);
        let mut scaled = rows.clone();
        scaler.apply(&mut scaled);
        for r in &scaled {
            assert!(r[0].is_finite());
            assert_eq!(r[0], 0.0);
        }
    }

    #[test]
    fn rescaled_values_start_in_unit_interval() {
        let rows = vec![vec![10.0], vec![20.0], vec![15.0]];
        let scaler = FeatureScaler::fit(&rows);
        // Before the unit-variance division, values map onto [0,1]:
        // check extremes map to 0 and 1/σ.
        let mut lo = vec![10.0];
        let mut hi = vec![20.0];
        scaler.apply_row(&mut lo);
        scaler.apply_row(&mut hi);
        assert_eq!(lo[0], 0.0);
        assert!(hi[0] > 0.0);
    }

    #[test]
    fn apply_matches_between_splits() {
        let train = vec![vec![0.0, 1.0], vec![10.0, 3.0]];
        let scaler = FeatureScaler::fit(&train);
        let mut a = vec![vec![5.0, 2.0]];
        let mut b = vec![vec![5.0, 2.0]];
        scaler.apply(&mut a);
        scaler.apply(&mut b);
        assert_eq!(a, b);
        assert_eq!(scaler.feature_count(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_width_row_panics() {
        let scaler = FeatureScaler::fit(&[vec![1.0, 2.0]]);
        let mut row = vec![1.0];
        scaler.apply_row(&mut row);
    }
}
