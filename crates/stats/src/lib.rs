//! Statistical debugging analyses (§3 of the paper).
//!
//! Given counter-vector reports collected from many runs, this crate
//! answers "which predicates predict failure?" three ways, in increasing
//! sophistication:
//!
//! * [`confidence`] — closed-form effectiveness arithmetic (§3.1.3): how
//!   many runs does a deployment need before sparse sampling observes a
//!   rare event?
//! * [`elimination`] — the four predicate-elimination strategies for
//!   deterministic bugs (§3.2.2), plus [`progressive`] refinement over
//!   time (Figure 2);
//! * [`contingency`] — per-predicate 2×2 observation tables exposed
//!   straight from sufficient statistics, the common input of every
//!   coverage-based fault-localisation measure (see `cbi-scoring`);
//! * [`logistic`] — ℓ₁-regularized logistic regression trained by
//!   stochastic gradient ascent for non-deterministic bugs (§3.3), with
//!   [`scaling`] and [`crossval`] for λ selection, over a [`dataset::Dataset`]
//!   built from raw reports.
//!
//! # Example: isolating a deterministic bug
//!
//! ```
//! use cbi_reports::{Label, Report, SufficientStats};
//! use cbi_stats::elimination::{apply, combine, survivors, Strategy};
//!
//! // Counter 0 fires only in failures; counter 1 fires everywhere.
//! let mut stats = SufficientStats::new(2);
//! stats.update(&Report::new(0, Label::Failure, vec![1, 1]));
//! stats.update(&Report::new(1, Label::Success, vec![0, 3]));
//!
//! let groups = [(0, 1), (1, 1)];
//! let uf = apply(&stats, Strategy::UniversalFalsehood, &groups);
//! let sc = apply(&stats, Strategy::SuccessfulCounterexample, &groups);
//! assert_eq!(survivors(&combine(&[uf, sc])), vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod contingency;
pub mod crossval;
pub mod dataset;
pub mod elimination;
pub mod logistic;
pub mod online;
pub mod progressive;
pub mod scaling;

pub use confidence::{detection_probability, runs_needed};
pub use contingency::{contingency_tables, Contingency};
pub use crossval::{
    choose_lambda, choose_lambda_kfold, try_choose_lambda, CrossvalError, LambdaChoice,
};
pub use dataset::Dataset;
pub use elimination::{apply, combine, survivor_count, survivors, KeepMask, Strategy};
pub use logistic::{sigmoid, LogisticModel, TrainConfig};
pub use online::OnlineTrainer;
pub use progressive::{progressive_elimination, ProgressiveConfig, ProgressivePoint};
pub use scaling::FeatureScaler;
