//! ℓ₁-regularized logistic regression for crash prediction (§3.3.2).
//!
//! The model is `P(crash | x) = μ_β(x) = 1 / (1 + exp(−β₀ − βᵀx))`,
//! trained by maximizing the ℓ₁-penalized log likelihood
//!
//! ```text
//!   LL(β | D, λ) = Σᵢ [ yᵢ log μ(xᵢ) + (1 − yᵢ) log(1 − μ(xᵢ)) ] − λ‖β‖₁
//! ```
//!
//! with *stochastic gradient ascent*, exactly as in the paper.  The ℓ₁
//! penalty forces most coefficients toward zero ("we expect that most of
//! our features are wild guesses, but that there may be just a few that
//! correctly characterize the bug"); the surviving large-|β| features are
//! the predicates to investigate, ranked by magnitude.

use crate::dataset::Dataset;
use cbi_sampler::Pcg32;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// ℓ₁ regularization strength λ (the paper cross-validates to 0.3).
    pub lambda: f64,
    /// Gradient-ascent step size.
    pub learning_rate: f64,
    /// Passes over the training set ("the model usually converges within
    /// sixty iterations through the training set").
    pub epochs: usize,
    /// Shuffling seed for the stochastic updates.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lambda: 0.3,
            learning_rate: 0.01,
            epochs: 60,
            seed: 1729,
        }
    }
}

/// A trained logistic-regression crash predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Intercept β₀.
    pub bias: f64,
    /// Feature coefficients β.
    pub weights: Vec<f64>,
}

/// The logistic function.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticModel {
    /// Trains a model on `data` (features should already be scaled).
    ///
    /// Per-sample gradient ascent on the log likelihood, with the ℓ₁
    /// penalty applied via the *cumulative penalty* method (Tsuruoka,
    /// Tsujii & Ananiadou 2009): each weight is clipped toward zero by the
    /// total regularization it has accrued but not yet paid, which yields
    /// exact zeros without the noise of naive per-sample shrinkage.  The
    /// per-sample penalty rate is `lr·λ / n`, so `λ` matches the batch
    /// objective `LL(D) − λ‖β‖₁` of §3.3.2.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &TrainConfig) -> LogisticModel {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let d = data.feature_count();
        let mut w = vec![0.0; d];
        let mut bias = 0.0;
        let lr = config.learning_rate;
        let rate = lr * config.lambda;
        // u: total penalty each weight could have received so far;
        // q[j]: penalty weight j has actually paid.
        let mut u = 0.0;
        let mut q = vec![0.0; d];
        let mut rng = Pcg32::new(config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();

        for _ in 0..config.epochs {
            // Reshuffle each epoch for stochasticity.
            for i in (1..order.len()).rev() {
                let j = rng.below((i + 1) as u64) as usize;
                order.swap(i, j);
            }
            for &i in &order {
                let x = &data.rows[i];
                let y = data.labels[i];
                let z = bias + dot(&w, x);
                let err = y - sigmoid(z);
                bias += lr * err;
                u += rate;
                for ((wj, &xj), qj) in w.iter_mut().zip(x).zip(q.iter_mut()) {
                    if xj != 0.0 {
                        *wj += lr * err * xj;
                    }
                    // Cumulative ℓ₁ clipping.
                    let before = *wj;
                    if before > 0.0 {
                        *wj = (before - (u + *qj)).max(0.0);
                    } else if before < 0.0 {
                        *wj = (before + (u - *qj)).min(0.0);
                    }
                    *qj += *wj - before;
                }
            }
        }
        LogisticModel { bias, weights: w }
    }

    /// Predicted crash probability for a (scaled) feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        sigmoid(self.bias + dot(&self.weights, row))
    }

    /// Binary classification at threshold ½ (§3.3.2).
    pub fn classify(&self, row: &[f64]) -> bool {
        self.predict(row) > 0.5
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .rows
            .iter()
            .zip(&data.labels)
            .filter(|(row, &y)| self.classify(row) == (y == 1.0))
            .count();
        correct as f64 / data.len() as f64
    }

    /// Penalized log likelihood of a dataset under this model.
    pub fn penalized_log_likelihood(&self, data: &Dataset, lambda: f64) -> f64 {
        let ll: f64 = data
            .rows
            .iter()
            .zip(&data.labels)
            .map(|(row, &y)| {
                let mu = self.predict(row).clamp(1e-12, 1.0 - 1e-12);
                y * mu.ln() + (1.0 - y) * (1.0 - mu).ln()
            })
            .sum();
        let l1: f64 = self.bias.abs() + self.weights.iter().map(|w| w.abs()).sum::<f64>();
        ll - lambda * l1
    }

    /// Number of exactly zero coefficients (sparsity induced by ℓ₁).
    pub fn zero_weights(&self) -> usize {
        self.weights.iter().filter(|&&w| w == 0.0).count()
    }

    /// Feature indices ranked by coefficient magnitude, largest first.
    /// Ties break toward lower feature index for determinism.
    pub fn ranked_features(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| {
            self.weights[b]
                .abs()
                .partial_cmp(&self.weights[a].abs())
                .expect("weights are finite")
                .then(a.cmp(&b))
        });
        idx
    }

    /// The rank (0-based) of a feature in [`Self::ranked_features`].
    pub fn rank_of(&self, feature: usize) -> Option<usize> {
        self.ranked_features().iter().position(|&f| f == feature)
    }
}

fn dot(w: &[f64], x: &[f64]) -> f64 {
    w.iter().zip(x).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::{Label, Report};

    /// Synthetic crash-prediction task: feature 2 is the real signal
    /// (crash iff it is large); features 0,1,3..9 are noise.
    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = Pcg32::new(seed);
        let reports: Vec<Report> = (0..n)
            .map(|i| {
                let crash = rng.next_f64() < 0.4;
                let counters: Vec<u64> = (0..10)
                    .map(|j| {
                        if j == 2 {
                            if crash {
                                5 + rng.below(10)
                            } else {
                                rng.below(2)
                            }
                        } else {
                            rng.below(4)
                        }
                    })
                    .collect();
                Report::new(
                    i as u64,
                    if crash {
                        Label::Failure
                    } else {
                        Label::Success
                    },
                    counters,
                )
            })
            .collect();
        let mut d = Dataset::from_reports(&reports);
        d.fit_scale();
        d
    }

    #[test]
    fn sigmoid_shape() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        assert!(sigmoid(-800.0) >= 0.0, "no underflow panic");
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn learns_the_predictive_feature() {
        let data = synthetic(600, 3);
        let model = LogisticModel::train(
            &data,
            &TrainConfig {
                lambda: 0.1,
                ..TrainConfig::default()
            },
        );
        let ranked = model.ranked_features();
        assert_eq!(ranked[0], 2, "weights: {:?}", model.weights);
        assert!(model.weights[2] > 0.0, "crash feature has positive weight");
        assert!(model.accuracy(&data) > 0.9, "acc {}", model.accuracy(&data));
    }

    #[test]
    fn l1_induces_sparsity() {
        let data = synthetic(600, 5);
        let dense = LogisticModel::train(
            &data,
            &TrainConfig {
                lambda: 0.0,
                ..TrainConfig::default()
            },
        );
        let sparse = LogisticModel::train(
            &data,
            &TrainConfig {
                lambda: 1.0,
                ..TrainConfig::default()
            },
        );
        assert!(
            sparse.zero_weights() > dense.zero_weights(),
            "sparse {} vs dense {}",
            sparse.zero_weights(),
            dense.zero_weights()
        );
    }

    #[test]
    fn heavy_regularization_kills_noise_but_not_signal() {
        let data = synthetic(800, 7);
        let model = LogisticModel::train(
            &data,
            &TrainConfig {
                lambda: 0.3,
                ..TrainConfig::default()
            },
        );
        // At the paper's cross-validated λ = 0.3, the cumulative-penalty
        // lasso zeroes every noise weight exactly while the true signal
        // survives.
        assert!(model.weights[2] > 0.0, "weights: {:?}", model.weights);
        for j in (0..10).filter(|&j| j != 2) {
            assert_eq!(
                model.weights[j], 0.0,
                "noise weight {j} nonzero: {:?}",
                model.weights
            );
        }
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let data = synthetic(1000, 11);
        let (train, _cv, test) = data.split(700, 100, 9);
        let model = LogisticModel::train(&train, &TrainConfig::default());
        assert!(model.accuracy(&test) > 0.85, "{}", model.accuracy(&test));
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic(300, 13);
        let a = LogisticModel::train(&data, &TrainConfig::default());
        let b = LogisticModel::train(&data, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn likelihood_improves_with_training() {
        let data = synthetic(400, 17);
        let untrained = LogisticModel {
            bias: 0.0,
            weights: vec![0.0; data.feature_count()],
        };
        let trained = LogisticModel::train(&data, &TrainConfig::default());
        assert!(
            trained.penalized_log_likelihood(&data, 0.3)
                > untrained.penalized_log_likelihood(&data, 0.3)
        );
    }

    #[test]
    fn rank_of_finds_features() {
        let model = LogisticModel {
            bias: 0.0,
            weights: vec![0.1, -0.9, 0.5],
        };
        assert_eq!(model.ranked_features(), vec![1, 2, 0]);
        assert_eq!(model.rank_of(1), Some(0));
        assert_eq!(model.rank_of(0), Some(2));
        assert_eq!(model.rank_of(9), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn training_on_empty_dataset_panics() {
        let _ = LogisticModel::train(&Dataset::default(), &TrainConfig::default());
    }
}
