//! Cross-validated choice of the regularization strength λ (§3.3.3).
//!
//! "A suitable value for the regularization parameter λ is determined
//! through cross-validation to be 0.3."  We train one model per candidate
//! λ on the training split and keep the one with the best accuracy on the
//! cross-validation split, breaking ties toward stronger regularization
//! (sparser models point at fewer predicates).

use crate::dataset::Dataset;
use crate::logistic::{LogisticModel, TrainConfig};
use cbi_sampler::Pcg32;
use std::fmt;

/// Typed failure modes for cross-validation on degenerate inputs, in the
/// same spirit as the pipeline's `PipelineError` for `regress`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossvalError {
    /// The λ candidate list was empty.
    NoCandidates,
    /// The training or validation split held no rows.
    EmptySplit,
    /// K-fold needs at least two folds.
    TooFewFolds {
        /// Folds requested.
        folds: usize,
    },
    /// More folds were requested than there are reports to spread over
    /// them.
    FoldsExceedReports {
        /// Folds requested.
        folds: usize,
        /// Reports available.
        reports: usize,
    },
    /// A fold's held-out rows all carry the same label, so accuracy on it
    /// cannot discriminate between candidate λ values.
    SingleClassFold {
        /// 0-based index of the degenerate fold.
        fold: usize,
    },
}

impl fmt::Display for CrossvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossvalError::NoCandidates => {
                write!(f, "need at least one lambda candidate")
            }
            CrossvalError::EmptySplit => write!(f, "empty train or cross-validation split"),
            CrossvalError::TooFewFolds { folds } => {
                write!(
                    f,
                    "k-fold cross-validation needs at least 2 folds (got {folds})"
                )
            }
            CrossvalError::FoldsExceedReports { folds, reports } => write!(
                f,
                "cannot spread {reports} report(s) over {folds} folds; \
                 collect more reports or reduce the fold count"
            ),
            CrossvalError::SingleClassFold { fold } => write!(
                f,
                "fold {fold} holds out a single class only; \
                 its accuracy cannot rank lambda candidates"
            ),
        }
    }
}

impl std::error::Error for CrossvalError {}

/// Result of a λ sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaChoice {
    /// The winning λ.
    pub lambda: f64,
    /// The model trained with the winning λ.
    pub model: LogisticModel,
    /// `(λ, cv accuracy)` for every candidate, in input order.
    pub sweep: Vec<(f64, f64)>,
}

/// Sweeps `candidates`, training on `train` and scoring on `cv`.
///
/// # Panics
///
/// Panics if `candidates` is empty or either split is empty.
pub fn choose_lambda(
    train: &Dataset,
    cv: &Dataset,
    candidates: &[f64],
    base: &TrainConfig,
) -> LambdaChoice {
    match try_choose_lambda(train, cv, candidates, base) {
        Ok(choice) => choice,
        // Keep the historical panic messages for existing callers.
        Err(CrossvalError::NoCandidates) => {
            panic!("need at least one lambda candidate")
        }
        Err(e) => panic!("empty split: {e}"),
    }
}

/// The fallible form of [`choose_lambda`]: degenerate inputs come back as
/// a typed [`CrossvalError`] instead of a panic.
pub fn try_choose_lambda(
    train: &Dataset,
    cv: &Dataset,
    candidates: &[f64],
    base: &TrainConfig,
) -> Result<LambdaChoice, CrossvalError> {
    if candidates.is_empty() {
        return Err(CrossvalError::NoCandidates);
    }
    if train.is_empty() || cv.is_empty() {
        return Err(CrossvalError::EmptySplit);
    }

    let mut sweep = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, f64, LogisticModel)> = None;
    for &lambda in candidates {
        let config = TrainConfig { lambda, ..*base };
        let model = LogisticModel::train(train, &config);
        let acc = model.accuracy(cv);
        sweep.push((lambda, acc));
        let better = match &best {
            None => true,
            // Prefer higher accuracy; on (near-)ties prefer larger λ.
            Some((best_lambda, best_acc, _)) => {
                acc > *best_acc + 1e-9 || (acc >= *best_acc - 1e-9 && lambda > *best_lambda)
            }
        };
        if better {
            best = Some((lambda, acc, model));
        }
    }
    let (lambda, _, model) = best.expect("nonempty candidates");
    Ok(LambdaChoice {
        lambda,
        model,
        sweep,
    })
}

/// K-fold λ selection: shuffles the rows with a seeded PRNG, splits them
/// into `folds` contiguous folds, scores every candidate λ by its mean
/// held-out accuracy, and trains the winning λ on the full dataset.
///
/// Degenerate fold structures are rejected up front with a typed error:
/// fewer than two folds, more folds than reports, or any fold whose
/// held-out labels are all the same class (its accuracy could not
/// discriminate between candidates).
pub fn choose_lambda_kfold(
    data: &Dataset,
    folds: usize,
    seed: u64,
    candidates: &[f64],
    base: &TrainConfig,
) -> Result<LambdaChoice, CrossvalError> {
    if candidates.is_empty() {
        return Err(CrossvalError::NoCandidates);
    }
    if folds < 2 {
        return Err(CrossvalError::TooFewFolds { folds });
    }
    if folds > data.len() {
        return Err(CrossvalError::FoldsExceedReports {
            folds,
            reports: data.len(),
        });
    }

    // Seeded Fisher–Yates, then contiguous fold ranges over the shuffle.
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = Pcg32::new(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let base_size = data.len() / folds;
    let remainder = data.len() % folds;
    let mut ranges = Vec::with_capacity(folds);
    let mut start = 0usize;
    for f in 0..folds {
        let size = base_size + usize::from(f < remainder);
        ranges.push(start..start + size);
        start += size;
    }

    let subset = |idx: &[usize]| Dataset {
        rows: idx.iter().map(|&i| data.rows[i].clone()).collect(),
        labels: idx.iter().map(|&i| data.labels[i]).collect(),
        feature_counters: data.feature_counters.clone(),
    };

    // Reject single-class folds before spending any training time.
    for (f, range) in ranges.iter().enumerate() {
        let held: Vec<f64> = order[range.clone()]
            .iter()
            .map(|&i| data.labels[i])
            .collect();
        if held.windows(2).all(|w| w[0] == w[1]) {
            return Err(CrossvalError::SingleClassFold { fold: f });
        }
    }

    let mut sweep = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, f64)> = None;
    for &lambda in candidates {
        let config = TrainConfig { lambda, ..*base };
        let mut acc_sum = 0.0;
        for range in &ranges {
            let held: Vec<usize> = order[range.clone()].to_vec();
            let kept: Vec<usize> = order[..range.start]
                .iter()
                .chain(&order[range.end..])
                .copied()
                .collect();
            let model = LogisticModel::train(&subset(&kept), &config);
            acc_sum += model.accuracy(&subset(&held));
        }
        let acc = acc_sum / folds as f64;
        sweep.push((lambda, acc));
        let better = match &best {
            None => true,
            Some((best_lambda, best_acc)) => {
                acc > *best_acc + 1e-9 || (acc >= *best_acc - 1e-9 && lambda > *best_lambda)
            }
        };
        if better {
            best = Some((lambda, acc));
        }
    }
    let (lambda, _) = best.expect("nonempty candidates");
    let model = LogisticModel::train(data, &TrainConfig { lambda, ..*base });
    Ok(LambdaChoice {
        lambda,
        model,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::{Label, Report};
    use cbi_sampler::Pcg32;

    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = Pcg32::new(seed);
        let reports: Vec<Report> = (0..n)
            .map(|i| {
                let crash = rng.next_f64() < 0.3;
                let counters: Vec<u64> = (0..6)
                    .map(|j| {
                        if j == 1 && crash {
                            8 + rng.below(5)
                        } else {
                            rng.below(3)
                        }
                    })
                    .collect();
                Report::new(
                    i as u64,
                    if crash {
                        Label::Failure
                    } else {
                        Label::Success
                    },
                    counters,
                )
            })
            .collect();
        let mut d = Dataset::from_reports(&reports);
        d.fit_scale();
        d
    }

    #[test]
    fn sweep_covers_all_candidates() {
        let data = synthetic(400, 2);
        let (train, cv, _) = data.split(300, 50, 1);
        let choice = choose_lambda(&train, &cv, &[0.01, 0.1, 0.3, 1.0], &TrainConfig::default());
        assert_eq!(choice.sweep.len(), 4);
        assert!(choice.sweep.iter().any(|&(l, _)| l == choice.lambda));
    }

    #[test]
    fn chosen_model_performs_well() {
        let data = synthetic(600, 3);
        let (train, cv, test) = data.split(400, 100, 5);
        let choice = choose_lambda(&train, &cv, &[0.05, 0.3, 2.0], &TrainConfig::default());
        assert!(choice.model.accuracy(&test) > 0.8);
    }

    #[test]
    fn extreme_lambda_loses() {
        // λ large enough to zero everything cannot beat a moderate λ.
        let data = synthetic(500, 7);
        let (train, cv, _) = data.split(350, 100, 3);
        let choice = choose_lambda(&train, &cv, &[0.1, 50.0], &TrainConfig::default());
        assert_eq!(choice.lambda, 0.1);
    }

    #[test]
    fn ties_prefer_stronger_regularization() {
        // With a single perfectly separable feature, several λ values can
        // reach equal accuracy; the sparser (larger λ) model must win.
        let data = synthetic(500, 9);
        let (train, cv, _) = data.split(350, 100, 4);
        let choice = choose_lambda(&train, &cv, &[0.01, 0.05], &TrainConfig::default());
        let (a01, acc01) = choice.sweep[0];
        let (a05, acc05) = choice.sweep[1];
        assert_eq!((a01, a05), (0.01, 0.05));
        if (acc01 - acc05).abs() < 1e-9 {
            assert_eq!(choice.lambda, 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "lambda candidate")]
    fn empty_candidates_panic() {
        let data = synthetic(100, 1);
        let (train, cv, _) = data.split(50, 20, 0);
        let _ = choose_lambda(&train, &cv, &[], &TrainConfig::default());
    }

    #[test]
    fn try_choose_lambda_reports_degenerate_inputs() {
        let data = synthetic(100, 1);
        let (train, cv, _) = data.split(50, 20, 0);
        assert_eq!(
            try_choose_lambda(&train, &cv, &[], &TrainConfig::default()),
            Err(CrossvalError::NoCandidates)
        );
        let empty = Dataset::default();
        assert_eq!(
            try_choose_lambda(&empty, &cv, &[0.3], &TrainConfig::default()),
            Err(CrossvalError::EmptySplit)
        );
        assert_eq!(
            try_choose_lambda(&train, &empty, &[0.3], &TrainConfig::default()),
            Err(CrossvalError::EmptySplit)
        );
        // The happy path matches the panicking front end.
        let a = try_choose_lambda(&train, &cv, &[0.1, 0.3], &TrainConfig::default()).unwrap();
        let b = choose_lambda(&train, &cv, &[0.1, 0.3], &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn kfold_rejects_more_folds_than_reports() {
        let data = synthetic(8, 4);
        let err = choose_lambda_kfold(&data, 9, 0, &[0.3], &TrainConfig::default()).unwrap_err();
        assert_eq!(
            err,
            CrossvalError::FoldsExceedReports {
                folds: 9,
                reports: 8
            }
        );
        assert!(err.to_string().contains("9 folds"), "{err}");
        let err = choose_lambda_kfold(&data, 1, 0, &[0.3], &TrainConfig::default()).unwrap_err();
        assert_eq!(err, CrossvalError::TooFewFolds { folds: 1 });
    }

    #[test]
    fn kfold_rejects_single_class_folds() {
        // All-success labels: every fold holds out a single class.
        let reports: Vec<Report> = (0..40)
            .map(|i| Report::new(i as u64, Label::Success, vec![i as u64 % 5, 1]))
            .collect();
        let data = Dataset::from_reports(&reports);
        let err =
            choose_lambda_kfold(&data, 4, 7, &[0.1, 0.3], &TrainConfig::default()).unwrap_err();
        assert!(
            matches!(err, CrossvalError::SingleClassFold { .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn kfold_selects_a_working_lambda_on_healthy_data() {
        let data = synthetic(300, 6);
        let choice =
            choose_lambda_kfold(&data, 5, 11, &[0.05, 0.3, 2.0], &TrainConfig::default()).unwrap();
        assert_eq!(choice.sweep.len(), 3);
        // The final model is trained on all rows with the winning λ.
        assert!(choice.model.accuracy(&data) > 0.8);
        // Deterministic: same seed, same choice.
        let again =
            choose_lambda_kfold(&data, 5, 11, &[0.05, 0.3, 2.0], &TrainConfig::default()).unwrap();
        assert_eq!(choice, again);
    }
}
