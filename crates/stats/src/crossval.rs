//! Cross-validated choice of the regularization strength λ (§3.3.3).
//!
//! "A suitable value for the regularization parameter λ is determined
//! through cross-validation to be 0.3."  We train one model per candidate
//! λ on the training split and keep the one with the best accuracy on the
//! cross-validation split, breaking ties toward stronger regularization
//! (sparser models point at fewer predicates).

use crate::dataset::Dataset;
use crate::logistic::{LogisticModel, TrainConfig};

/// Result of a λ sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaChoice {
    /// The winning λ.
    pub lambda: f64,
    /// The model trained with the winning λ.
    pub model: LogisticModel,
    /// `(λ, cv accuracy)` for every candidate, in input order.
    pub sweep: Vec<(f64, f64)>,
}

/// Sweeps `candidates`, training on `train` and scoring on `cv`.
///
/// # Panics
///
/// Panics if `candidates` is empty or either split is empty.
pub fn choose_lambda(
    train: &Dataset,
    cv: &Dataset,
    candidates: &[f64],
    base: &TrainConfig,
) -> LambdaChoice {
    assert!(!candidates.is_empty(), "need at least one lambda candidate");
    assert!(!train.is_empty() && !cv.is_empty(), "empty split");

    let mut sweep = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, f64, LogisticModel)> = None;
    for &lambda in candidates {
        let config = TrainConfig { lambda, ..*base };
        let model = LogisticModel::train(train, &config);
        let acc = model.accuracy(cv);
        sweep.push((lambda, acc));
        let better = match &best {
            None => true,
            // Prefer higher accuracy; on (near-)ties prefer larger λ.
            Some((best_lambda, best_acc, _)) => {
                acc > *best_acc + 1e-9 || (acc >= *best_acc - 1e-9 && lambda > *best_lambda)
            }
        };
        if better {
            best = Some((lambda, acc, model));
        }
    }
    let (lambda, _, model) = best.expect("nonempty candidates");
    LambdaChoice {
        lambda,
        model,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::{Label, Report};
    use cbi_sampler::Pcg32;

    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = Pcg32::new(seed);
        let reports: Vec<Report> = (0..n)
            .map(|i| {
                let crash = rng.next_f64() < 0.3;
                let counters: Vec<u64> = (0..6)
                    .map(|j| {
                        if j == 1 && crash {
                            8 + rng.below(5)
                        } else {
                            rng.below(3)
                        }
                    })
                    .collect();
                Report::new(
                    i as u64,
                    if crash {
                        Label::Failure
                    } else {
                        Label::Success
                    },
                    counters,
                )
            })
            .collect();
        let mut d = Dataset::from_reports(&reports);
        d.fit_scale();
        d
    }

    #[test]
    fn sweep_covers_all_candidates() {
        let data = synthetic(400, 2);
        let (train, cv, _) = data.split(300, 50, 1);
        let choice = choose_lambda(&train, &cv, &[0.01, 0.1, 0.3, 1.0], &TrainConfig::default());
        assert_eq!(choice.sweep.len(), 4);
        assert!(choice.sweep.iter().any(|&(l, _)| l == choice.lambda));
    }

    #[test]
    fn chosen_model_performs_well() {
        let data = synthetic(600, 3);
        let (train, cv, test) = data.split(400, 100, 5);
        let choice = choose_lambda(&train, &cv, &[0.05, 0.3, 2.0], &TrainConfig::default());
        assert!(choice.model.accuracy(&test) > 0.8);
    }

    #[test]
    fn extreme_lambda_loses() {
        // λ large enough to zero everything cannot beat a moderate λ.
        let data = synthetic(500, 7);
        let (train, cv, _) = data.split(350, 100, 3);
        let choice = choose_lambda(&train, &cv, &[0.1, 50.0], &TrainConfig::default());
        assert_eq!(choice.lambda, 0.1);
    }

    #[test]
    fn ties_prefer_stronger_regularization() {
        // With a single perfectly separable feature, several λ values can
        // reach equal accuracy; the sparser (larger λ) model must win.
        let data = synthetic(500, 9);
        let (train, cv, _) = data.split(350, 100, 4);
        let choice = choose_lambda(&train, &cv, &[0.01, 0.05], &TrainConfig::default());
        let (a01, acc01) = choice.sweep[0];
        let (a05, acc05) = choice.sweep[1];
        assert_eq!((a01, a05), (0.01, 0.05));
        if (acc01 - acc05).abs() < 1e-9 {
            assert_eq!(choice.lambda, 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "lambda candidate")]
    fn empty_candidates_panic() {
        let data = synthetic(100, 1);
        let (train, cv, _) = data.split(50, 20, 0);
        let _ = choose_lambda(&train, &cv, &[], &TrainConfig::default());
    }
}
