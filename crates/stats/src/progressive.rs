//! Progressive elimination over time (§3.2.4, Figure 2).
//!
//! How fast does elimination by *successful counterexample* shrink the
//! candidate predicate set as successful runs accumulate?  The paper draws
//! random subsets of successful runs in steps of fifty, repeats the whole
//! process one hundred times, and plots mean ± one standard deviation of
//! the surviving predicate count.

use cbi_reports::{Label, Report};
use cbi_sampler::Pcg32;

/// One point on the Figure 2 curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressivePoint {
    /// Number of successful trials used.
    pub runs: usize,
    /// Mean surviving-predicate count over the repetitions.
    pub mean: f64,
    /// Standard deviation of the surviving-predicate count.
    pub std_dev: f64,
}

/// Configuration for the progressive-elimination experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressiveConfig {
    /// Subset size increment (the paper uses 50).
    pub step: usize,
    /// Repetitions per subset size (the paper uses 100).
    pub repetitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        ProgressiveConfig {
            step: 50,
            repetitions: 100,
            seed: 2003,
        }
    }
}

/// Runs the Figure 2 experiment.
///
/// `candidates` is the starting predicate set (the paper starts from the
/// counters surviving *universal falsehood*: "the 141 candidate predicates
/// that are ever nonzero on any run").  Reports with non-success labels are
/// ignored.
pub fn progressive_elimination(
    reports: &[Report],
    candidates: &[usize],
    config: &ProgressiveConfig,
) -> Vec<ProgressivePoint> {
    let successes: Vec<&Report> = reports
        .iter()
        .filter(|r| r.label == Label::Success)
        .collect();
    let mut rng = Pcg32::new(config.seed);
    let mut points = Vec::new();

    let mut size = config.step;
    while size <= successes.len() {
        let mut counts = Vec::with_capacity(config.repetitions);
        for _ in 0..config.repetitions {
            let subset = sample_indices(&mut rng, successes.len(), size);
            let surviving = candidates
                .iter()
                .filter(|&&c| subset.iter().all(|&ri| !successes[ri].observed(c)))
                .count();
            counts.push(surviving as f64);
        }
        points.push(point(size, &counts));
        // Also emit a final point at the full suite size if the next step
        // would skip past it.
        if size + config.step > successes.len() && size != successes.len() {
            let all: Vec<usize> = (0..successes.len()).collect();
            let surviving = candidates
                .iter()
                .filter(|&&c| all.iter().all(|&ri| !successes[ri].observed(c)))
                .count();
            points.push(ProgressivePoint {
                runs: successes.len(),
                mean: surviving as f64,
                std_dev: 0.0,
            });
        }
        size += config.step;
    }
    points
}

fn point(runs: usize, counts: &[f64]) -> ProgressivePoint {
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
    ProgressivePoint {
        runs,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
fn sample_indices(rng: &mut Pcg32, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.below((n - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_sampler::Pcg32;

    /// Synthetic suite: 300 successful runs over 10 candidate counters.
    /// Counter `c` is observed true in a successful run with probability
    /// c/10, so higher-indexed counters are eliminated faster.
    fn synthetic_reports(n: usize) -> Vec<Report> {
        let mut rng = Pcg32::new(7);
        (0..n)
            .map(|i| {
                let counters = (0..10)
                    .map(|c| u64::from(rng.next_f64() < c as f64 / 10.0))
                    .collect();
                Report::new(i as u64, Label::Success, counters)
            })
            .collect()
    }

    #[test]
    fn curve_is_monotonically_nonincreasing_in_mean() {
        let reports = synthetic_reports(300);
        let candidates: Vec<usize> = (0..10).collect();
        let config = ProgressiveConfig {
            step: 50,
            repetitions: 40,
            seed: 1,
        };
        let points = progressive_elimination(&reports, &candidates, &config);
        assert!(points.len() >= 6);
        for w in points.windows(2) {
            assert!(
                w[1].mean <= w[0].mean + 1e-9,
                "means must not increase: {points:?}"
            );
        }
    }

    #[test]
    fn never_eliminated_counter_survives() {
        // Counter 0 is never observed true, so it always survives.
        let reports = synthetic_reports(200);
        let points = progressive_elimination(
            &reports,
            &[0],
            &ProgressiveConfig {
                step: 100,
                repetitions: 10,
                seed: 3,
            },
        );
        for p in &points {
            assert_eq!(p.mean, 1.0);
            assert_eq!(p.std_dev, 0.0);
        }
    }

    #[test]
    fn frequently_observed_counter_dies_quickly() {
        let reports = synthetic_reports(200);
        // Counter 9 is true in ~90% of runs: after 50 runs survival is
        // essentially impossible.
        let points = progressive_elimination(
            &reports,
            &[9],
            &ProgressiveConfig {
                step: 50,
                repetitions: 20,
                seed: 5,
            },
        );
        assert!(points[0].mean < 0.05, "{points:?}");
    }

    #[test]
    fn failure_reports_are_ignored() {
        let mut reports = synthetic_reports(100);
        // A failure run observing candidate 0 must not eliminate it.
        reports.push(Report::new(999, Label::Failure, vec![1; 10]));
        let points = progressive_elimination(
            &reports,
            &[0],
            &ProgressiveConfig {
                step: 100,
                repetitions: 5,
                seed: 8,
            },
        );
        assert_eq!(points[0].mean, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let reports = synthetic_reports(150);
        let candidates: Vec<usize> = (0..10).collect();
        let cfg = ProgressiveConfig {
            step: 50,
            repetitions: 15,
            seed: 11,
        };
        let a = progressive_elimination(&reports, &candidates, &cfg);
        let b = progressive_elimination(&reports, &candidates, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn final_point_covers_full_suite() {
        let reports = synthetic_reports(130);
        let candidates: Vec<usize> = (0..10).collect();
        let cfg = ProgressiveConfig {
            step: 50,
            repetitions: 5,
            seed: 2,
        };
        let points = progressive_elimination(&reports, &candidates, &cfg);
        assert_eq!(points.last().unwrap().runs, 130);
    }
}
