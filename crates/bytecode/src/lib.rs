//! Bytecode layer for MiniC: flat instructions for the dispatch VM.
//!
//! The tree-walking engines in `cbi-vm` pay a child-pointer chase and a
//! `Result` frame per AST node.  This crate compiles the slot-resolved
//! form ([`cbi_minic::slots::SlotProgram`]) down to a single flat
//! instruction vector — loads and stores by dense slot index, resolved
//! jump targets, explicit call frames — that a `loop { match op }`
//! engine can dispatch without recursion.
//!
//! The compiler preserves the walkers' observable semantics *exactly*:
//! every op-cost charge, trap message, counter bump, and trace entry
//! happens in the same order with the same value, so the bytecode engine
//! is byte-identical to the slot walker on every completed run (the
//! contract `tests/engine_reference_gate.rs` pins).  Two things make the
//! compiled form faster rather than merely flatter:
//!
//! * **Charge fusion** — adjacent cost charges with no trap point or jump
//!   target between them fold into one [`Op::Charge`]/[`Op::Stmt`], so a
//!   statement head and its first expression node cost one add, not two
//!   dispatches.
//! * **Fused countdown ops** — the five statement shapes the sampling
//!   transformation synthesizes on every region boundary (`int __cd =
//!   __gcd`, `cd = cd - k`, `cd = __gcd` / `__gcd = cd`, `cd =
//!   __next_cd()`, `if (cd > w)` / `if (cd == 0)`) each compile to one
//!   [`Op`] carrying a [`CdSpec`], so the instrumented fast path between
//!   region boundaries is straight-line: one threshold branch, one fused
//!   decrement, then the user's own code.
//! * **Superinstruction fusion** — a peephole pass over the patched code
//!   collapses the dominant op sequences into single instructions: a
//!   whole `x = a <op> b;` statement (statement head, charges, two
//!   loads, the operator, the store) becomes one [`Op::FusedBin`], a
//!   loop condition becomes one [`Op::FusedBr`], and an array-index
//!   prologue (pointer check, charge, index load, integer check) becomes
//!   one [`Op::FusedIdx`].  Fused specs keep every charge at its
//!   original position and fetch operands in source order, so trap order
//!   and cost accounting are bit-identical to the unfused sequence; the
//!   pass never fuses across a jump target.
//!
//! The instrumentation schemes' fast/slow dual paths (cloned at the AST
//! level by `cbi-instrument`) therefore become dual bytecode *blocks*:
//! the fast block has its observation sites stripped and decrements
//! coalesced (one `CdUpdate` per basic block), the slow block keeps the
//! sites live, and a single [`Op::CdBranch`] threshold test selects
//! between them.
//!
//! A [`disasm`] module renders the deterministic listing used by the
//! `cbi disasm` subcommand and its golden-file tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
pub mod disasm;
mod instr;

pub use compile::{compile, compile_with};
pub use disasm::disassemble;
pub use instr::{
    BcFunction, BcProgram, BcRef, BinSpec, BrSpec, CallSpec, CdSpec, Costs, Dest, GateSpec,
    IdxSpec, LdSpec, MvSpec, Op, Operand, RetSpec, StSpec,
};
