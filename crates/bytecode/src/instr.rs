//! The instruction set and compiled-program container.

use cbi_minic::ast::{BinOp, Type, UnOp};
use cbi_minic::slots::SlotGlobal;

/// Abstract op-cost charges baked into the compiled code.
///
/// Mirrors the VM's cost model field for field; the engine refuses to run
/// a program compiled against a different model, so baked charges always
/// agree with the charges its runtime helpers apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Costs {
    /// Per executed statement.
    pub stmt: u64,
    /// Per evaluated expression node.
    pub expr: u64,
    /// Per function call.
    pub call: u64,
    /// Per heap operation.
    pub mem: u64,
    /// Per observation.
    pub observe: u64,
    /// Per countdown refill.
    pub refill: u64,
    /// Per synthesized bookkeeping statement.
    pub bookkeeping: u64,
}

impl Default for Costs {
    fn default() -> Self {
        Costs {
            stmt: 1,
            expr: 1,
            call: 12,
            mem: 6,
            observe: 2,
            refill: 6,
            bookkeeping: 1,
        }
    }
}

/// A statically resolved variable reference inside a [`CdSpec`] —
/// the bytecode mirror of [`cbi_minic::slots::SlotRef`], with undefined
/// names interned in [`BcProgram::names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcRef {
    /// Frame slot; traps if the declaration has not executed yet.
    Local(u32),
    /// Direct global index.
    Global(u32),
    /// Frame slot if bound, else the global (dynamic shadowing).
    LocalOrGlobal(u32, u32),
    /// Always a runtime trap; payload indexes [`BcProgram::names`].
    Undefined(u32),
}

/// Where a fused instruction's operand comes from.
///
/// Mirrors the load ops one for one: fetching a [`Operand::Local`] traps
/// on an unbound slot with the same message as [`Op::LoadLocal`].
/// Statically undefined references never fuse, so there is no `Undefined`
/// variant here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// An integer literal.
    Const(i64),
    /// The null pointer literal.
    Null,
    /// A frame slot; traps if unbound.
    Local(u32),
    /// A global.
    Global(u32),
    /// The frame slot if bound, else the global.
    LocalOr(u32, u32),
    /// Popped from the operand stack (already evaluated).
    Stack,
}

/// Where a fused instruction's result goes.
///
/// Mirrors the store ops: [`Dest::Local`] traps on an unbound slot with
/// the same message as [`Op::AssignLocal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Push onto the operand stack.
    Push,
    /// Bind a frame slot (declaration: always binds).
    Bind(u32),
    /// Store to a bound frame slot; traps if unbound.
    Local(u32),
    /// Store to a global.
    Global(u32),
    /// Store to the frame slot if bound, else the global.
    LocalOr(u32, u32),
    /// Return the value from the current function (a fused [`Op::Ret`]).
    Ret,
}

/// One fused binary-arithmetic instruction: an optional statement head,
/// baked charges at their original positions, two operand fetches, the
/// operator, and the destination — a whole `x = a <op> b;` statement in
/// one dispatch.  Stored in [`BcProgram::bins`].
///
/// The field order is the execution order: statement-head bump, charge
/// `chg_a`, fetch `a`, charge `chg_b`, fetch `b`, apply `op`, store to
/// `dst`.  Each step traps exactly where the unfused op sequence did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinSpec {
    /// Fused leading region-boundary countdown op, as an index into
    /// [`BcProgram::specs`]; executed before the statement head.
    pub pre: Option<u32>,
    /// `true` = the prefix is a [`Op::CdDecl`] (binds); `false` = a
    /// [`Op::CdCopy`] (assigns).
    pub pre_decl: bool,
    /// Bump the telemetry step counter first (the fused [`Op::Stmt`]).
    pub stmt: bool,
    /// Units charged before `a` (with `stmt`, charged even when zero —
    /// [`Op::Stmt`] always charges).
    pub chg_a: u32,
    /// Left operand.
    pub a: Operand,
    /// Units charged between the operands (zero = no charge op fused).
    pub chg_b: u32,
    /// Right operand.
    pub b: Operand,
    /// The operator; never a short-circuit op.
    pub op: BinOp,
    /// Result destination.
    pub dst: Dest,
}

/// One fused conditional branch: charges and operand fetches as in
/// [`BinSpec`], then a comparison (or a bare truthiness test when `cmp`
/// is `None`) deciding the jump.  Stored in [`BcProgram::brs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrSpec {
    /// Bump the telemetry step counter first.
    pub stmt: bool,
    /// Units charged before `a`.
    pub chg_a: u32,
    /// Condition operand (the only one when `cmp` is `None`).
    pub a: Operand,
    /// Units charged between the operands.
    pub chg_b: u32,
    /// Right operand; ignored when `cmp` is `None`.
    pub b: Operand,
    /// Fused comparison, or `None` for a bare integer truthiness test
    /// (trapping on non-integers like [`Op::BranchFalse`]).
    pub cmp: Option<BinOp>,
    /// Jump when the condition equals this (`false` = branch-if-false).
    pub jump_if: bool,
}

/// One fused pointer-index prologue: the pointer fetch, its
/// load/store-flavored check, the index charge and fetch, and the integer
/// check of the index — leaving checked pointer and index on the operand
/// stack for the following [`Op::HeapLoad`]/[`Op::HeapStore`], exactly
/// like the unfused sequence.  Stored in [`BcProgram::idxs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdxSpec {
    /// Bump the telemetry step counter first.
    pub stmt: bool,
    /// Units charged before the pointer fetch.
    pub c_ptr: u32,
    /// The pointer operand.
    pub ptr: Operand,
    /// `None` = load flavor ([`Op::LoadPtrCheck`] trap messages);
    /// `Some(name)` = store flavor ([`Op::StorePtrCheck`]).
    pub store_name: Option<u32>,
    /// Units charged between pointer check and index fetch.
    pub c_idx: u32,
    /// The index operand.
    pub idx: Operand,
}

/// One fused return: an optional region-exit countdown copy, an optional
/// statement head, the baked charge, the operand fetch, and the frame
/// pop — a whole `__gcd = __cd; return x;` in one dispatch.  Stored in
/// [`BcProgram::rets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetSpec {
    /// Fused leading [`Op::CdCopy`], as an index into
    /// [`BcProgram::specs`].
    pub pre: Option<u32>,
    /// Bump the telemetry step counter first.
    pub stmt: bool,
    /// Units charged before the operand fetch (with `stmt`, charged even
    /// when zero).
    pub chg: u32,
    /// The returned operand ([`Operand::Stack`] only with `pre` set — a
    /// fused copy before a plain [`Op::Ret`]).
    pub a: Operand,
}

/// One fused move: an optional statement head, the baked charge, one
/// operand fetch, and the destination — a whole `int x = 0;` (or a bare
/// charged push feeding a call) in one dispatch.  Stored in
/// [`BcProgram::mvs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvSpec {
    /// Fused leading region-boundary countdown op, as an index into
    /// [`BcProgram::specs`]; executed before the statement head.
    pub pre: Option<u32>,
    /// `true` = the prefix is a [`Op::CdDecl`] (binds); `false` = a
    /// [`Op::CdCopy`] (assigns).
    pub pre_decl: bool,
    /// Bump the telemetry step counter first.
    pub stmt: bool,
    /// Units charged before the fetch (with `stmt`, charged even when
    /// zero).
    pub chg: u32,
    /// The moved operand; never [`Operand::Stack`].
    pub a: Operand,
    /// Destination; never [`Dest::Ret`] (that shape is [`Op::FusedRet`]).
    pub dst: Dest,
}

/// One fused countdown gate — the region-entry sequence the sampling
/// transformation plants everywhere: an optional countdown import
/// ([`Op::CdDecl`] or [`Op::CdCopy`]), the threshold test, and the
/// fast-path decrement executed only when the test falls through.
/// Stored in [`BcProgram::gates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateSpec {
    /// Leading import, as an index into [`BcProgram::specs`].
    pub pre: Option<u32>,
    /// `true` = the import is a [`Op::CdDecl`] (binds); `false` = a
    /// [`Op::CdCopy`] (assigns).
    pub pre_decl: bool,
    /// The [`Op::CdBranch`] threshold spec.
    pub br: u32,
    /// The fall-through [`Op::CdUpdate`] spec, executed only when the
    /// threshold test passes.
    pub dec: Option<u32>,
}

/// One fused call with a result destination: the call itself plus the
/// store that consumes its return value, recorded in the frame so the
/// return applies it directly.  Stored in [`BcProgram::calls`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSpec {
    /// Callee index into [`BcProgram::functions`].
    pub func: u32,
    /// Number of evaluated arguments on the operand stack.
    pub argc: u32,
    /// Where the callee's return value goes in this caller's frame;
    /// never [`Dest::Ret`].
    pub dst: Dest,
}

/// One fused heap load: the whole pointer-index prologue of
/// [`IdxSpec`], the memory charge, the load, and the destination —
/// `x = p[i];` in one dispatch.  Stored in [`BcProgram::lds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdSpec {
    /// The pointer/index prologue (load flavor: `store_name` is `None`).
    pub idx: IdxSpec,
    /// Where the loaded value goes.
    pub dst: Dest,
}

/// One fused heap store: the pointer-index prologue, the value charge
/// and fetch, the memory charge, and the store — `p[i] = v;` in one
/// dispatch.  Stored in [`BcProgram::sts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StSpec {
    /// The pointer/index prologue (store flavor: `store_name` is set).
    pub idx: IdxSpec,
    /// Units charged before the value fetch (zero = no charge op fused).
    pub c_val: u32,
    /// The stored value.
    pub val: Operand,
}

/// The operands of one fused synthesized-countdown instruction, stored in
/// [`BcProgram::specs`] and referenced by index so [`Op`] stays compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdSpec {
    /// Destination of the bound/assigned value.
    pub dst: BcRef,
    /// Source variable (`__cd` / `__gcd`).
    pub src: BcRef,
    /// Operator of the fused arithmetic or threshold test.
    pub op: BinOp,
    /// Immediate right-hand operand.
    pub k: i64,
}

/// One bytecode instruction.
///
/// Every jump payload is a resolved absolute index into
/// [`BcProgram::ops`].  Charge amounts are baked from the compile-time
/// [`Costs`]; charges applied by runtime helpers (heap traffic,
/// observations, refills) stay dynamic so their position relative to trap
/// points matches the tree walkers exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Statement head: bump the telemetry step counter, then charge `n`
    /// units (fused with adjacent expression-node charges).
    Stmt(u32),
    /// Charge `n` units (suspended inside free regions).
    Charge(u32),
    /// Push an integer literal.
    PushInt(i64),
    /// Push the null pointer.
    PushNull,
    /// Discard the top of the operand stack.
    Pop,
    /// Push a frame slot; traps if unbound.
    LoadLocal(u32),
    /// Push a global.
    LoadGlobal(u32),
    /// Push the frame slot if bound, else the global.
    LoadLocalOr(u32, u32),
    /// Trap: undefined variable (payload indexes [`BcProgram::names`]).
    LoadUndef(u32),
    /// Pop and bind a frame slot (declaration: always binds).
    BindLocal(u32),
    /// Pop and store to a bound frame slot; traps if unbound.
    AssignLocal(u32),
    /// Pop and store to a global.
    AssignGlobal(u32),
    /// Pop and store to the frame slot if bound, else the global.
    AssignLocalOr(u32, u32),
    /// Trap: assignment to an undefined variable.
    AssignUndef(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop; trap if non-integer; jump if zero.
    BranchFalse(u32),
    /// Pop; trap if non-integer; jump if nonzero.
    BranchTrue(u32),
    /// Pop; trap if non-integer; push 0/1 truthiness.
    ToBool,
    /// Trap unless the top of stack is an integer (kept in place).
    ExpectInt,
    /// Trap unless the top of stack is a pointer (kept in place):
    /// null dereference or "indexing non-pointer value".
    LoadPtrCheck,
    /// Like [`Op::LoadPtrCheck`] for store targets; payload indexes
    /// [`BcProgram::names`] for the trap message.
    StorePtrCheck(u32),
    /// Charge memory cost; pop index and pointer; push the loaded value.
    HeapLoad,
    /// Charge memory cost; pop value, index, and pointer; store.
    HeapStore,
    /// Pop an integer; push the unary result.
    Unary(UnOp),
    /// Pop two operands; push the binary result (non-short-circuit ops).
    Binary(BinOp),
    /// Call a user function: depth check, call charge, new frame binding
    /// `argc` popped arguments.
    Call {
        /// Callee index into [`BcProgram::functions`].
        func: u32,
        /// Number of evaluated arguments on the operand stack.
        argc: u32,
    },
    /// Trap: call to an undefined function.
    CallUndef(u32),
    /// Pop the return value, pop the frame, resume the caller.
    Ret,
    /// Return the integer zero (procedures, `return;`, int fall-off).
    RetZero,
    /// Return null (fall-off of a pointer-returning function).
    RetNull,
    /// `alloc(n)`: pop the length, push the new pointer.
    Alloc,
    /// `free(p)`: pop the argument, push 0.
    Free,
    /// `len(p)`: pop the argument, push the block length.
    Len,
    /// `read()`: push the next scripted input value.
    Read,
    /// `has_input()`: push the input-remaining flag.
    HasInput,
    /// `print(v)`: pop an integer, append to the output log, push 0.
    Print,
    /// `exit(c)`: pop an integer, end the run successfully.
    Exit,
    /// `__check(site, ok)` tail: pop both integers, observe, push 0.
    ObsCheck,
    /// `__cmp` tail: pop the deferred-error state and three operands,
    /// observe the comparison, push 0.
    ObsCmpFin,
    /// `__obs_sign` tail: pop the deferred-error state and two operands,
    /// observe the sign class, push 0.
    ObsSignFin,
    /// `__next_cd()`: refill charge, push the next countdown.
    NextCd,
    /// Enter a charge-free region (synthesized bookkeeping operands).
    FreeEnter,
    /// Leave a charge-free region.
    FreeExit,
    /// Arm deferred-error capture for an observation argument list; the
    /// payload is the resume point after the first argument.
    DeferPush(u32),
    /// Advance the deferred-error capture to the next argument boundary.
    DeferNext(u32),
    /// Fused `int __cd = __gcd;`: bookkeeping charge, copy, bind.
    CdDecl(u32),
    /// Fused `__gcd = __cd;` / `__cd = __gcd;`: bookkeeping charge, copy.
    CdCopy(u32),
    /// Fused `cd = cd <op> k;`: bookkeeping charge, arithmetic, store —
    /// the coalesced region decrement is one of these.
    CdUpdate(u32),
    /// Fused `cd = __next_cd();`: bookkeeping + refill charge, store.
    CdRefill(u32),
    /// Fused `if (cd <op> k)` threshold test selecting the fast or slow
    /// block: bookkeeping charge, compare, fall through or jump to `els`.
    CdBranch {
        /// Index into [`BcProgram::specs`].
        spec: u32,
        /// Jump target when the condition is false.
        els: u32,
    },
    /// Generic synthesized-conditional tail: pop the condition, trap on
    /// non-integers, record the region-telemetry class, branch.
    SynthCheck {
        /// Condition operator for telemetry classification, encoded as
        /// discriminant + 1, or 0 when the condition is not a binary op.
        op: u32,
        /// Jump target when the condition is false.
        els: u32,
    },
    /// A builtin was called with too few arguments; panics at execution
    /// time exactly where the tree walkers' argument indexing panics.
    MissingArg,
    /// Peephole-fused charge/load/load/binary/store sequence; payload
    /// indexes [`BcProgram::bins`].
    FusedBin(u32),
    /// Peephole-fused charge/load/load/compare/branch sequence; payload
    /// indexes [`BcProgram::brs`], jumping to `target` per the spec.
    FusedBr {
        /// Index into [`BcProgram::brs`].
        spec: u32,
        /// Absolute jump target when the branch is taken.
        target: u32,
    },
    /// Peephole-fused pointer/index prologue; payload indexes
    /// [`BcProgram::idxs`].  Pushes the checked pointer and index.
    FusedIdx(u32),
    /// Peephole-fused charge/load/return sequence; payload indexes
    /// [`BcProgram::rets`].
    FusedRet(u32),
    /// Peephole-fused pointer/index/load/store-result sequence; payload
    /// indexes [`BcProgram::lds`].
    FusedLoad(u32),
    /// Peephole-fused pointer/index/value/heap-store sequence; payload
    /// indexes [`BcProgram::sts`].
    FusedStore(u32),
    /// Peephole-fused charge/load/store move; payload indexes
    /// [`BcProgram::mvs`].
    FusedMov(u32),
    /// [`Op::FusedBin`] followed by an unconditional jump (the loop
    /// back-edge shape); payload indexes [`BcProgram::bins`].
    FusedBinJ {
        /// Index into [`BcProgram::bins`].
        spec: u32,
        /// Absolute jump target after the store.
        target: u32,
    },
    /// Peephole-fused countdown region gate; payload indexes
    /// [`BcProgram::gates`], jumping to `els` when the threshold test
    /// fails.
    CdGate {
        /// Index into [`BcProgram::gates`].
        spec: u32,
        /// Jump target when the threshold test fails (the slow path).
        els: u32,
    },
    /// Peephole-fused call whose return value lands in a recorded
    /// destination; payload indexes [`BcProgram::calls`].
    CallBind(u32),
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct BcFunction {
    /// Function name (diagnostics and disassembly).
    pub name: String,
    /// Entry index into [`BcProgram::ops`].
    pub entry: u32,
    /// One past the last instruction of this function's body.
    pub end: u32,
    /// Number of parameters; they occupy slots `0..n_params`.
    pub n_params: u32,
    /// Total frame slots.
    pub n_slots: u32,
    /// Slot index → variable name, for trap messages.
    pub slot_names: Vec<String>,
    /// Return type, or `None` for procedures.
    pub ret: Option<Type>,
}

/// A whole program compiled to bytecode: the unit the dispatch engine
/// executes.  Produce one with [`crate::compile`] and share it freely —
/// compiling once per campaign amortizes code generation over thousands
/// of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct BcProgram {
    /// All functions' instructions, concatenated.
    pub ops: Vec<Op>,
    /// Compiled functions, in source order.
    pub functions: Vec<BcFunction>,
    /// Globals, in declaration order (indices match global references).
    pub globals: Vec<SlotGlobal>,
    /// Index of `main`, if any.
    pub main: Option<u32>,
    /// Index of the `__gcd` sampling countdown global, if present.
    pub gcd_global: Option<u32>,
    /// Interned names for trap messages about statically unresolved
    /// variables, callees, and store targets.
    pub names: Vec<Box<str>>,
    /// Operand records for the fused countdown instructions.
    pub specs: Vec<CdSpec>,
    /// Operand records for [`Op::FusedBin`] instructions.
    pub bins: Vec<BinSpec>,
    /// Operand records for [`Op::FusedBr`] instructions.
    pub brs: Vec<BrSpec>,
    /// Operand records for [`Op::FusedIdx`] instructions.
    pub idxs: Vec<IdxSpec>,
    /// Operand records for [`Op::FusedRet`] instructions.
    pub rets: Vec<RetSpec>,
    /// Operand records for [`Op::FusedLoad`] instructions.
    pub lds: Vec<LdSpec>,
    /// Operand records for [`Op::FusedStore`] instructions.
    pub sts: Vec<StSpec>,
    /// Operand records for [`Op::FusedMov`] instructions.
    pub mvs: Vec<MvSpec>,
    /// Operand records for [`Op::CdGate`] instructions.
    pub gates: Vec<GateSpec>,
    /// Operand records for [`Op::CallBind`] instructions.
    pub calls: Vec<CallSpec>,
    /// The cost model the charges were baked against.
    pub costs: Costs,
}
