//! Deterministic textual listing of compiled programs.
//!
//! The output is stable across runs and platforms — ops print in program
//! order with absolute indices, interned names and countdown specs are
//! rendered inline, and nothing depends on hash-map iteration order — so
//! listings are usable as golden files (`cbi disasm` and its tests).

use crate::instr::{BcProgram, BcRef, CdSpec, Dest, Op, Operand};
use std::fmt::Write as _;

/// Renders the full program listing.
pub fn disassemble(prog: &BcProgram) -> String {
    let mut out = String::new();
    let c = &prog.costs;
    let _ = writeln!(
        out,
        "; costs stmt={} expr={} call={} mem={} observe={} refill={} bookkeeping={}",
        c.stmt, c.expr, c.call, c.mem, c.observe, c.refill, c.bookkeeping
    );
    for (i, g) in prog.globals.iter().enumerate() {
        let mark = if prog.gcd_global == Some(i as u32) {
            "  ; countdown"
        } else {
            ""
        };
        let _ = writeln!(out, "global {i}: {} {} = {}{mark}", g.ty, g.name, g.init);
    }
    for (fi, f) in prog.functions.iter().enumerate() {
        let mark = if prog.main == Some(fi as u32) {
            "  ; main"
        } else {
            ""
        };
        let params = f
            .slot_names
            .iter()
            .take(f.n_params as usize)
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "\nfn {fi} {}({params}) slots={} entry={}{mark}",
            f.name, f.n_slots, f.entry
        );
        for pc in f.entry..f.end {
            let _ = writeln!(out, "{pc:5}  {}", render(prog, fi, prog.ops[pc as usize]));
        }
    }
    out
}

fn slot_name(prog: &BcProgram, func: usize, slot: u32) -> &str {
    prog.functions[func]
        .slot_names
        .get(slot as usize)
        .map(String::as_str)
        .unwrap_or("?")
}

fn global_name(prog: &BcProgram, g: u32) -> &str {
    prog.globals
        .get(g as usize)
        .map(|g| g.name.as_str())
        .unwrap_or("?")
}

fn bc_ref(prog: &BcProgram, func: usize, r: BcRef) -> String {
    match r {
        BcRef::Local(s) => format!("%{s} ({})", slot_name(prog, func, s)),
        BcRef::Global(g) => format!("@{g} ({})", global_name(prog, g)),
        BcRef::LocalOrGlobal(s, g) => format!(
            "%{s}|@{g} ({})",
            prog.functions[func]
                .slot_names
                .get(s as usize)
                .map(String::as_str)
                .unwrap_or_else(|| global_name(prog, g))
        ),
        BcRef::Undefined(n) => format!("?{}", name(prog, n)),
    }
}

fn spec(prog: &BcProgram, func: usize, idx: u32) -> String {
    let CdSpec { dst, src, op, k } = prog.specs[idx as usize];
    format!(
        "{} <- {} {op} {k}",
        bc_ref(prog, func, dst),
        bc_ref(prog, func, src)
    )
}

fn name(prog: &BcProgram, idx: u32) -> &str {
    prog.names.get(idx as usize).map(|n| &**n).unwrap_or("?")
}

/// Renders a fused region-boundary countdown prefix.
fn cd_pfx(prog: &BcProgram, func: usize, pre: Option<u32>, decl: bool) -> String {
    match pre {
        Some(p) if decl => format!("[cd_decl {}] ", spec(prog, func, p)),
        Some(p) => format!("[cd_copy {}] ", spec(prog, func, p)),
        None => String::new(),
    }
}

/// The fused charges executed before an operand fetch: `stmt+N` for a
/// fused statement head, `+N` for a bare charge, nothing when absent.
fn charge_pfx(stmt: bool, n: u32) -> String {
    if stmt {
        format!("stmt+{n} ")
    } else if n > 0 {
        format!("+{n} ")
    } else {
        String::new()
    }
}

fn operand(prog: &BcProgram, func: usize, o: Operand) -> String {
    match o {
        Operand::Const(v) => format!("{v}"),
        Operand::Null => "null".into(),
        Operand::Local(s) => format!("%{s} ({})", slot_name(prog, func, s)),
        Operand::Global(g) => format!("@{g} ({})", global_name(prog, g)),
        Operand::LocalOr(s, g) => format!("%{s}|@{g} ({})", slot_name(prog, func, s)),
        Operand::Stack => "stack".into(),
    }
}

fn dest(prog: &BcProgram, func: usize, d: Dest) -> String {
    match d {
        Dest::Push => "push".into(),
        Dest::Bind(s) => format!("bind %{s} ({})", slot_name(prog, func, s)),
        Dest::Local(s) => format!("%{s} ({})", slot_name(prog, func, s)),
        Dest::Global(g) => format!("@{g} ({})", global_name(prog, g)),
        Dest::LocalOr(s, g) => format!("%{s}|@{g} ({})", slot_name(prog, func, s)),
        Dest::Ret => "ret".into(),
    }
}

fn render(prog: &BcProgram, func: usize, op: Op) -> String {
    match op {
        Op::Stmt(n) => format!("stmt        +{n}"),
        Op::Charge(n) => format!("charge      +{n}"),
        Op::PushInt(v) => format!("push_int    {v}"),
        Op::PushNull => "push_null".into(),
        Op::Pop => "pop".into(),
        Op::LoadLocal(s) => format!("load        %{s} ({})", slot_name(prog, func, s)),
        Op::LoadGlobal(g) => format!("load        @{g} ({})", global_name(prog, g)),
        Op::LoadLocalOr(s, g) => format!("load        %{s}|@{g} ({})", slot_name(prog, func, s)),
        Op::LoadUndef(n) => format!("load_undef  {}", name(prog, n)),
        Op::BindLocal(s) => format!("bind        %{s} ({})", slot_name(prog, func, s)),
        Op::AssignLocal(s) => format!("store       %{s} ({})", slot_name(prog, func, s)),
        Op::AssignGlobal(g) => format!("store       @{g} ({})", global_name(prog, g)),
        Op::AssignLocalOr(s, g) => format!("store       %{s}|@{g} ({})", slot_name(prog, func, s)),
        Op::AssignUndef(n) => format!("store_undef {}", name(prog, n)),
        Op::Jump(t) => format!("jump        -> {t}"),
        Op::BranchFalse(t) => format!("br_false    -> {t}"),
        Op::BranchTrue(t) => format!("br_true     -> {t}"),
        Op::ToBool => "to_bool".into(),
        Op::ExpectInt => "expect_int".into(),
        Op::LoadPtrCheck => "ptr_check".into(),
        Op::StorePtrCheck(n) => format!("ptr_check   `{}`", name(prog, n)),
        Op::HeapLoad => "heap_load".into(),
        Op::HeapStore => "heap_store".into(),
        Op::Unary(op) => format!("unary       {op}"),
        Op::Binary(op) => format!("binary      {op}"),
        Op::Call { func: f, argc } => format!(
            "call        fn {f} ({}) argc={argc}",
            prog.functions
                .get(f as usize)
                .map(|f| f.name.as_str())
                .unwrap_or("?")
        ),
        Op::CallUndef(n) => format!("call_undef  {}", name(prog, n)),
        Op::Ret => "ret".into(),
        Op::RetZero => "ret_zero".into(),
        Op::RetNull => "ret_null".into(),
        Op::Alloc => "alloc".into(),
        Op::Free => "free".into(),
        Op::Len => "len".into(),
        Op::Read => "read".into(),
        Op::HasInput => "has_input".into(),
        Op::Print => "print".into(),
        Op::Exit => "exit".into(),
        Op::ObsCheck => "obs_check".into(),
        Op::ObsCmpFin => "obs_cmp".into(),
        Op::ObsSignFin => "obs_sign".into(),
        Op::NextCd => "next_cd".into(),
        Op::FreeEnter => "free_enter".into(),
        Op::FreeExit => "free_exit".into(),
        Op::DeferPush(t) => format!("defer_push  -> {t}"),
        Op::DeferNext(t) => format!("defer_next  -> {t}"),
        Op::CdDecl(s) => format!("cd_decl     {}", spec(prog, func, s)),
        Op::CdCopy(s) => format!("cd_copy     {}", spec(prog, func, s)),
        Op::CdUpdate(s) => format!("cd_update   {}", spec(prog, func, s)),
        Op::CdRefill(s) => format!("cd_refill   {}", spec(prog, func, s)),
        Op::CdBranch { spec: s, els } => {
            format!("cd_branch   {} else -> {els}", spec(prog, func, s))
        }
        Op::SynthCheck { op, els } => format!("synth_check op={op} else -> {els}"),
        Op::MissingArg => "missing_arg".into(),
        Op::FusedBin(s) => {
            let sp = prog.bins[s as usize];
            let cb = if sp.chg_b > 0 {
                format!("+{} ", sp.chg_b)
            } else {
                String::new()
            };
            format!(
                "fused_bin   {}{}{} {} {cb}{} -> {}",
                cd_pfx(prog, func, sp.pre, sp.pre_decl),
                charge_pfx(sp.stmt, sp.chg_a),
                operand(prog, func, sp.a),
                sp.op,
                operand(prog, func, sp.b),
                dest(prog, func, sp.dst)
            )
        }
        Op::FusedBr { spec: s, target } => {
            let sp = prog.brs[s as usize];
            let cond = match sp.cmp {
                Some(op) => {
                    let cb = if sp.chg_b > 0 {
                        format!("+{} ", sp.chg_b)
                    } else {
                        String::new()
                    };
                    format!(
                        "{} {op} {cb}{}",
                        operand(prog, func, sp.a),
                        operand(prog, func, sp.b)
                    )
                }
                None => operand(prog, func, sp.a),
            };
            let when = if sp.jump_if { "if-true" } else { "if-false" };
            format!(
                "fused_br    {}{cond} {when} -> {target}",
                charge_pfx(sp.stmt, sp.chg_a)
            )
        }
        Op::FusedIdx(s) => {
            let sp = prog.idxs[s as usize];
            format!("fused_idx   {}", idx_spec(prog, func, sp))
        }
        Op::FusedRet(s) => {
            let sp = prog.rets[s as usize];
            let pre = cd_pfx(prog, func, sp.pre, false);
            format!(
                "fused_ret   {pre}{}{}",
                charge_pfx(sp.stmt, sp.chg),
                operand(prog, func, sp.a)
            )
        }
        Op::FusedLoad(s) => {
            let sp = prog.lds[s as usize];
            format!(
                "fused_load  {} -> {}",
                idx_spec(prog, func, sp.idx),
                dest(prog, func, sp.dst)
            )
        }
        Op::FusedStore(s) => {
            let sp = prog.sts[s as usize];
            let cv = if sp.c_val > 0 {
                format!("+{} ", sp.c_val)
            } else {
                String::new()
            };
            format!(
                "fused_store {} <- {cv}{}",
                idx_spec(prog, func, sp.idx),
                operand(prog, func, sp.val)
            )
        }
        Op::FusedMov(s) => {
            let sp = prog.mvs[s as usize];
            format!(
                "fused_mov   {}{}{} -> {}",
                cd_pfx(prog, func, sp.pre, sp.pre_decl),
                charge_pfx(sp.stmt, sp.chg),
                operand(prog, func, sp.a),
                dest(prog, func, sp.dst)
            )
        }
        Op::FusedBinJ { spec: s, target } => {
            let sp = prog.bins[s as usize];
            let cb = if sp.chg_b > 0 {
                format!("+{} ", sp.chg_b)
            } else {
                String::new()
            };
            format!(
                "fused_bin_j {}{}{} {} {cb}{} -> {} jump -> {target}",
                cd_pfx(prog, func, sp.pre, sp.pre_decl),
                charge_pfx(sp.stmt, sp.chg_a),
                operand(prog, func, sp.a),
                sp.op,
                operand(prog, func, sp.b),
                dest(prog, func, sp.dst)
            )
        }
        Op::CdGate { spec: s, els } => {
            let sp = prog.gates[s as usize];
            let pre = cd_pfx(prog, func, sp.pre, sp.pre_decl);
            let dec = match sp.dec {
                Some(d) => format!(" [cd_update {}]", spec(prog, func, d)),
                None => String::new(),
            };
            format!(
                "cd_gate     {pre}{} else -> {els}{dec}",
                spec(prog, func, sp.br)
            )
        }
        Op::CallBind(s) => {
            let sp = prog.calls[s as usize];
            format!(
                "call_bind   fn {} ({}) argc={} -> {}",
                sp.func,
                prog.functions
                    .get(sp.func as usize)
                    .map(|f| f.name.as_str())
                    .unwrap_or("?"),
                sp.argc,
                dest(prog, func, sp.dst)
            )
        }
    }
}

/// Renders the shared pointer-index prologue of the fused heap ops.
fn idx_spec(prog: &BcProgram, func: usize, sp: crate::instr::IdxSpec) -> String {
    let ci = if sp.c_idx > 0 {
        format!("+{} ", sp.c_idx)
    } else {
        String::new()
    };
    let kind = match sp.store_name {
        None => "load".into(),
        Some(n) => format!("store `{}`", name(prog, n)),
    };
    format!(
        "{}{}[{ci}{}] {kind}",
        charge_pfx(sp.stmt, sp.c_ptr),
        operand(prog, func, sp.ptr),
        operand(prog, func, sp.idx)
    )
}
