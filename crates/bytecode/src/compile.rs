//! The slot-AST → bytecode compiler.
//!
//! Compilation is a single syntax-directed pass with jump patching.  The
//! governing law is *charge parity*: the emitted code must consume cost
//! units in exactly the order the tree walkers do, at every potential
//! trap point, so `RunResult::ops` agrees between engines on every run.
//! Concretely:
//!
//! * every walker `charge()` becomes a [`Op::Charge`] at the same
//!   position relative to trap-capable instructions;
//! * two charges fold into one only when they are instruction-adjacent —
//!   nothing that can trap, observe, or receive a jump sits between them.
//!   A bound label is a fusion barrier: code arriving via the jump must
//!   not skip the folded amount;
//! * charges applied inside runtime helpers after an argument trap point
//!   (heap traffic, `__check`'s observe, refills) are *not* baked — the
//!   matching engine ops charge dynamically, like the walkers.
//!
//! Synthesized statements (the sampling transformation's countdown
//! bookkeeping) compile to fused single instructions when they match the
//! five shapes `cbi-instrument` emits; any other synthesized shape takes
//! a generic path that brackets its operand code with
//! [`Op::FreeEnter`]/[`Op::FreeExit`] so per-node charges are suspended
//! at run time, exactly like the walkers' `eval_uncharged`.

use crate::instr::{
    BcFunction, BcProgram, BcRef, BinSpec, BrSpec, CallSpec, CdSpec, Costs, Dest, GateSpec,
    IdxSpec, LdSpec, MvSpec, Op, Operand, RetSpec, StSpec,
};
use cbi_minic::ast::{BinOp, Type};
use cbi_minic::slots::{Callee, SlotExpr, SlotFunction, SlotProgram, SlotRef, SlotStmt};
use cbi_minic::Builtin;
use std::collections::HashMap;

/// Compiles a slot-lowered program with the default cost model.
pub fn compile(prog: &SlotProgram) -> BcProgram {
    compile_with(prog, Costs::default())
}

/// Compiles a slot-lowered program, baking charges from `costs`.
pub fn compile_with(prog: &SlotProgram, costs: Costs) -> BcProgram {
    let mut cx = Cx {
        ops: Vec::new(),
        names: Vec::new(),
        name_idx: HashMap::new(),
        specs: Vec::new(),
        costs,
    };
    let mut functions = Vec::with_capacity(prog.functions.len());
    for f in &prog.functions {
        let entry = cx.ops.len() as u32;
        FnCompiler {
            cx: &mut cx,
            prog,
            f,
            loops: Vec::new(),
            fuse: None,
        }
        .compile_body();
        functions.push(BcFunction {
            name: f.name.clone(),
            entry,
            end: cx.ops.len() as u32,
            n_params: f.n_params,
            n_slots: f.n_slots,
            slot_names: f.slot_names.clone(),
            ret: f.ret,
        });
    }
    let mut bc = BcProgram {
        ops: cx.ops,
        functions,
        globals: prog.globals.clone(),
        main: prog.main,
        gcd_global: prog.gcd_global,
        names: cx.names,
        specs: cx.specs,
        bins: Vec::new(),
        brs: Vec::new(),
        idxs: Vec::new(),
        rets: Vec::new(),
        lds: Vec::new(),
        sts: Vec::new(),
        mvs: Vec::new(),
        gates: Vec::new(),
        calls: Vec::new(),
        costs,
    };
    peephole(&mut bc);
    bc
}

/// Program-wide compile state: the shared op vector and interning pools.
struct Cx {
    ops: Vec<Op>,
    names: Vec<Box<str>>,
    name_idx: HashMap<Box<str>, u32>,
    specs: Vec<CdSpec>,
    costs: Costs,
}

impl Cx {
    fn name(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.name_idx.get(s) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(s.into());
        self.name_idx.insert(s.into(), i);
        i
    }

    fn spec(&mut self, s: CdSpec) -> u32 {
        // Specs repeat heavily (every region entry decrements by similar
        // shapes); interning keeps the table small and the listing stable.
        if let Some(i) = self.specs.iter().position(|x| *x == s) {
            return i as u32;
        }
        self.specs.push(s);
        (self.specs.len() - 1) as u32
    }
}

/// Unpatched forward-jump sites, all to be bound to one target.
type Label = Vec<usize>;

struct LoopCtx {
    /// Back-jump target: the condition re-evaluation point.
    cond: u32,
    /// `break` jump sites to patch at loop exit.
    breaks: Label,
}

struct FnCompiler<'a> {
    cx: &'a mut Cx,
    prog: &'a SlotProgram,
    f: &'a SlotFunction,
    loops: Vec<LoopCtx>,
    /// Index of the trailing [`Op::Charge`]/[`Op::Stmt`] eligible for
    /// charge fusion; `None` after any other op or a bound label.
    fuse: Option<usize>,
}

impl FnCompiler<'_> {
    fn compile_body(&mut self) {
        for s in &self.f.body {
            self.stmt(s);
        }
        // Fall-off-the-end epilogue: the zero value of the return type
        // (observably identical to the walkers' `Option` returns).
        match self.f.ret {
            Some(Type::Ptr) => self.emit(Op::RetNull),
            _ => self.emit(Op::RetZero),
        };
    }

    // ---- emission primitives -------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.fuse = None;
        self.cx.ops.push(op);
        self.cx.ops.len() - 1
    }

    /// Emits a charge, folding into the immediately preceding charge op
    /// when no trap point or label separates them.
    fn charge(&mut self, units: u64) {
        let units = units as u32;
        if let Some(i) = self.fuse {
            match &mut self.cx.ops[i] {
                Op::Charge(n) | Op::Stmt(n) => {
                    *n += units;
                    return;
                }
                _ => unreachable!("fuse index always points at a charge op"),
            }
        }
        self.cx.ops.push(Op::Charge(units));
        self.fuse = Some(self.cx.ops.len() - 1);
    }

    /// Emits a statement-head charge (steps bump + `units`).  Never folds
    /// backward: no statement ends in a bare charge, so there is nothing
    /// semantically adjacent to fold into.
    fn stmt_charge(&mut self, units: u64) {
        self.cx.ops.push(Op::Stmt(units as u32));
        self.fuse = Some(self.cx.ops.len() - 1);
    }

    /// The current position as a backward-jump target.  Binding a label
    /// bars charge fusion across it.
    fn here(&mut self) -> u32 {
        self.fuse = None;
        self.cx.ops.len() as u32
    }

    /// Emits a forward jump of the given shape with a placeholder target.
    fn jump(&mut self, label: &mut Label, make: fn(u32) -> Op) {
        let at = self.emit(make(u32::MAX));
        label.push(at);
    }

    /// Patches every site in `label` to jump to the current position.
    fn bind(&mut self, label: Label) {
        let target = self.cx.ops.len() as u32;
        for at in label {
            let op = &mut self.cx.ops[at];
            match op {
                Op::Jump(t)
                | Op::BranchFalse(t)
                | Op::BranchTrue(t)
                | Op::DeferPush(t)
                | Op::DeferNext(t)
                | Op::CdBranch { els: t, .. }
                | Op::SynthCheck { els: t, .. } => *t = target,
                _ => unreachable!("patched op always carries a jump target"),
            }
        }
        self.fuse = None;
    }

    fn bc_ref(&mut self, r: &SlotRef) -> BcRef {
        match r {
            SlotRef::Local(s) => BcRef::Local(*s),
            SlotRef::Global(g) => BcRef::Global(*g),
            SlotRef::LocalOrGlobal(s, g) => BcRef::LocalOrGlobal(*s, *g),
            SlotRef::Undefined(n) => BcRef::Undefined(self.cx.name(n)),
        }
    }

    fn load(&mut self, r: &SlotRef) {
        let op = match self.bc_ref(r) {
            BcRef::Local(s) => Op::LoadLocal(s),
            BcRef::Global(g) => Op::LoadGlobal(g),
            BcRef::LocalOrGlobal(s, g) => Op::LoadLocalOr(s, g),
            BcRef::Undefined(n) => Op::LoadUndef(n),
        };
        self.emit(op);
    }

    fn assign(&mut self, r: &SlotRef) {
        let op = match self.bc_ref(r) {
            BcRef::Local(s) => Op::AssignLocal(s),
            BcRef::Global(g) => Op::AssignGlobal(g),
            BcRef::LocalOrGlobal(s, g) => Op::AssignLocalOr(s, g),
            BcRef::Undefined(n) => Op::AssignUndef(n),
        };
        self.emit(op);
    }

    fn push_zero(&mut self, ty: Type) {
        self.emit(match ty {
            Type::Int => Op::PushInt(0),
            Type::Ptr => Op::PushNull,
        });
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, s: &SlotStmt) {
        match s {
            SlotStmt::Decl {
                ty,
                slot,
                init,
                synthesized,
            } => {
                if *synthesized {
                    return self.synth_decl(*ty, *slot, init);
                }
                self.stmt_charge(self.cx.costs.stmt);
                match init {
                    Some(e) => self.expr(e),
                    None => self.push_zero(*ty),
                }
                self.emit(Op::BindLocal(*slot));
            }
            SlotStmt::Assign {
                target,
                value,
                synthesized,
            } => {
                if *synthesized {
                    return self.synth_assign(target, value);
                }
                self.stmt_charge(self.cx.costs.stmt);
                self.expr(value);
                self.assign(target);
            }
            SlotStmt::If {
                cond,
                then_block,
                else_block,
                synthesized,
            } => {
                if *synthesized {
                    return self.synth_if(cond, then_block, else_block.as_deref());
                }
                self.stmt_charge(self.cx.costs.stmt);
                self.expr(cond);
                let mut els = Label::new();
                self.jump(&mut els, Op::BranchFalse);
                self.block(then_block);
                match else_block {
                    Some(e) => {
                        let mut end = Label::new();
                        self.jump(&mut end, Op::Jump);
                        self.bind(els);
                        self.block(e);
                        self.bind(end);
                    }
                    None => self.bind(els),
                }
            }
            SlotStmt::Store {
                target,
                index,
                value,
            } => {
                self.stmt_charge(self.cx.costs.stmt);
                // The target lookup itself is uncharged in the walkers.
                self.load(target);
                let name = self.cx.name(self.prog.ref_name(self.f, target));
                self.emit(Op::StorePtrCheck(name));
                self.expr(index);
                self.emit(Op::ExpectInt);
                self.expr(value);
                self.emit(Op::HeapStore);
            }
            SlotStmt::While { cond, body } => {
                // One statement charge at loop entry; iterations re-pay
                // only the condition's expression charges.
                self.stmt_charge(self.cx.costs.stmt);
                let top = self.here();
                self.expr(cond);
                let mut end = Label::new();
                self.jump(&mut end, Op::BranchFalse);
                self.loops.push(LoopCtx {
                    cond: top,
                    breaks: Label::new(),
                });
                self.block(body);
                self.emit(Op::Jump(top));
                let ctx = self.loops.pop().expect("loop context pushed above");
                self.bind(ctx.breaks);
                self.bind(end);
            }
            SlotStmt::Return { value } => {
                self.stmt_charge(self.cx.costs.stmt);
                match value {
                    Some(e) => {
                        self.expr(e);
                        self.emit(Op::Ret);
                    }
                    None => {
                        self.emit(Op::RetZero);
                    }
                }
            }
            SlotStmt::Break => {
                self.stmt_charge(self.cx.costs.stmt);
                let mut site = Label::new();
                self.jump(&mut site, Op::Jump);
                if let Some(ctx) = self.loops.last_mut() {
                    ctx.breaks.extend(site);
                }
                // `break` outside a loop is rejected by the parser; an
                // unpatched placeholder can only arise from a constructed
                // AST and will fail loudly at run time.
            }
            SlotStmt::Continue => {
                self.stmt_charge(self.cx.costs.stmt);
                match self.loops.last() {
                    Some(ctx) => {
                        let cond = ctx.cond;
                        self.emit(Op::Jump(cond));
                    }
                    None => {
                        let mut dangling = Label::new();
                        self.jump(&mut dangling, Op::Jump);
                    }
                }
            }
            SlotStmt::Check => {
                // Inert marker: only the statement charge.
                self.stmt_charge(self.cx.costs.stmt);
            }
            SlotStmt::Expr { expr } => {
                self.stmt_charge(self.cx.costs.stmt);
                self.expr(expr);
                self.emit(Op::Pop);
            }
        }
    }

    fn block(&mut self, b: &[SlotStmt]) {
        for s in b {
            self.stmt(s);
        }
    }

    // ---- synthesized (sampling bookkeeping) statements -----------------

    /// `int __cd = __gcd;` — region-entry countdown import.
    fn synth_decl(&mut self, ty: Type, slot: u32, init: &Option<SlotExpr>) {
        if let Some(SlotExpr::Var(r)) = init {
            let src = self.bc_ref(r);
            let spec = self.cx.spec(CdSpec {
                dst: BcRef::Local(slot),
                src,
                op: BinOp::Add,
                k: 0,
            });
            self.emit(Op::CdDecl(spec));
            return;
        }
        // Generic fallback: flat bookkeeping charge, operands evaluated
        // charge-free (the Charge ops inside are suspended at run time).
        self.stmt_charge(self.cx.costs.bookkeeping);
        match init {
            Some(e) => {
                self.emit(Op::FreeEnter);
                self.expr(e);
                self.emit(Op::FreeExit);
            }
            None => self.push_zero(ty),
        }
        self.emit(Op::BindLocal(slot));
    }

    /// Countdown copies (`__cd = __gcd`), decrements (`cd = cd - k`),
    /// and refills (`cd = __next_cd()`).
    fn synth_assign(&mut self, target: &SlotRef, value: &SlotExpr) {
        let dst = self.bc_ref(target);
        match value {
            SlotExpr::Var(r) => {
                let src = self.bc_ref(r);
                let spec = self.cx.spec(CdSpec {
                    dst,
                    src,
                    op: BinOp::Add,
                    k: 0,
                });
                self.emit(Op::CdCopy(spec));
                return;
            }
            SlotExpr::Binary { op, lhs, rhs } if *op != BinOp::And && *op != BinOp::Or => {
                // Short-circuit shapes are excluded: their right operand
                // is conditional and their traps differ from the fused
                // evaluation below.
                if let (SlotExpr::Var(r), SlotExpr::Int(k)) = (&**lhs, &**rhs) {
                    let src = self.bc_ref(r);
                    let spec = self.cx.spec(CdSpec {
                        dst,
                        src,
                        op: *op,
                        k: *k,
                    });
                    self.emit(Op::CdUpdate(spec));
                    return;
                }
            }
            SlotExpr::Call {
                callee: Callee::Builtin(Builtin::NextCountdown),
                ..
            } => {
                // The walkers never evaluate `__next_cd` arguments, so any
                // argument list fuses.
                let spec = self.cx.spec(CdSpec {
                    dst,
                    src: dst,
                    op: BinOp::Add,
                    k: 0,
                });
                self.emit(Op::CdRefill(spec));
                return;
            }
            _ => {}
        }
        self.stmt_charge(self.cx.costs.bookkeeping);
        self.emit(Op::FreeEnter);
        self.expr(value);
        self.emit(Op::FreeExit);
        self.assign(target);
    }

    /// Threshold tests: `if (cd > w) {fast} else {slow}` and the
    /// slow-path `if (cd == 0) {sample; refill}` guard.
    fn synth_if(
        &mut self,
        cond: &SlotExpr,
        then_block: &[SlotStmt],
        else_block: Option<&[SlotStmt]>,
    ) {
        let fused = match cond {
            SlotExpr::Binary { op, lhs, rhs } if op.is_comparison() => match (&**lhs, &**rhs) {
                (SlotExpr::Var(r), SlotExpr::Int(k)) => Some((self.bc_ref(r), *op, *k)),
                _ => None,
            },
            _ => None,
        };
        let mut els = Label::new();
        match fused {
            Some((src, op, k)) => {
                let spec = self.cx.spec(CdSpec {
                    dst: src,
                    src,
                    op,
                    k,
                });
                let at = self.emit(Op::CdBranch {
                    spec,
                    els: u32::MAX,
                });
                els.push(at);
            }
            None => {
                self.stmt_charge(self.cx.costs.bookkeeping);
                self.emit(Op::FreeEnter);
                self.expr(cond);
                self.emit(Op::FreeExit);
                let op_code = match cond {
                    SlotExpr::Binary { op, .. } => *op as u32 + 1,
                    _ => 0,
                };
                let at = self.emit(Op::SynthCheck {
                    op: op_code,
                    els: u32::MAX,
                });
                els.push(at);
            }
        }
        self.block(then_block);
        match else_block {
            Some(e) => {
                let mut end = Label::new();
                self.jump(&mut end, Op::Jump);
                self.bind(els);
                self.block(e);
                self.bind(end);
            }
            None => self.bind(els),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self, e: &SlotExpr) {
        self.charge(self.cx.costs.expr);
        match e {
            SlotExpr::Int(v) => {
                self.emit(Op::PushInt(*v));
            }
            SlotExpr::Null => {
                self.emit(Op::PushNull);
            }
            SlotExpr::Var(r) => self.load(r),
            SlotExpr::Load { ptr, index } => {
                self.expr(ptr);
                self.emit(Op::LoadPtrCheck);
                self.expr(index);
                self.emit(Op::ExpectInt);
                self.emit(Op::HeapLoad);
            }
            SlotExpr::Call { callee, args } => match callee {
                Callee::Builtin(b) => self.builtin(*b, args),
                Callee::Func(i) => {
                    // All arguments evaluate, even extras beyond the
                    // callee's arity (the walkers drop them at binding).
                    for a in args {
                        self.expr(a);
                    }
                    self.emit(Op::Call {
                        func: *i,
                        argc: args.len() as u32,
                    });
                }
                Callee::Undefined(n) => {
                    let name = self.cx.name(n);
                    self.emit(Op::CallUndef(name));
                }
            },
            SlotExpr::Unary { op, expr } => {
                self.expr(expr);
                self.emit(Op::ExpectInt);
                self.emit(Op::Unary(*op));
            }
            SlotExpr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs);
                    let mut short = Label::new();
                    self.jump(&mut short, Op::BranchFalse);
                    self.expr(rhs);
                    self.emit(Op::ToBool);
                    let mut end = Label::new();
                    self.jump(&mut end, Op::Jump);
                    self.bind(short);
                    self.emit(Op::PushInt(0));
                    self.bind(end);
                }
                BinOp::Or => {
                    self.expr(lhs);
                    let mut short = Label::new();
                    self.jump(&mut short, Op::BranchTrue);
                    self.expr(rhs);
                    self.emit(Op::ToBool);
                    let mut end = Label::new();
                    self.jump(&mut end, Op::Jump);
                    self.bind(short);
                    self.emit(Op::PushInt(1));
                    self.bind(end);
                }
                _ => {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.emit(Op::Binary(*op));
                }
            },
        }
    }

    /// Compiles the `n`-th required builtin argument as an integer, or a
    /// run-time panic matching the walkers' out-of-bounds indexing when
    /// an unchecked program passed too few arguments.
    fn int_arg(&mut self, args: &[SlotExpr], n: usize) {
        match args.get(n) {
            Some(a) => {
                self.expr(a);
                self.emit(Op::ExpectInt);
            }
            None => {
                self.emit(Op::MissingArg);
            }
        }
    }

    fn any_arg(&mut self, args: &[SlotExpr], n: usize) {
        match args.get(n) {
            Some(a) => self.expr(a),
            None => {
                self.emit(Op::MissingArg);
            }
        }
    }

    fn builtin(&mut self, b: Builtin, args: &[SlotExpr]) {
        // The call node's expression charge was already emitted by
        // `expr`; extra arguments beyond a builtin's arity are never
        // evaluated (walker parity).
        match b {
            Builtin::Alloc => {
                self.int_arg(args, 0);
                self.emit(Op::Alloc);
            }
            Builtin::Free => {
                self.any_arg(args, 0);
                self.emit(Op::Free);
            }
            Builtin::Len => {
                self.any_arg(args, 0);
                self.emit(Op::Len);
            }
            Builtin::Read => {
                self.emit(Op::Read);
            }
            Builtin::HasInput => {
                self.emit(Op::HasInput);
            }
            Builtin::Print => {
                self.int_arg(args, 0);
                self.emit(Op::Print);
            }
            Builtin::Exit => {
                self.int_arg(args, 0);
                self.emit(Op::Exit);
            }
            Builtin::ObsCheck => {
                self.int_arg(args, 0);
                self.int_arg(args, 1);
                self.emit(Op::ObsCheck);
            }
            Builtin::ObsCmp => {
                // Observe charge precedes the arguments for this builtin
                // (fuses with the node charge); argument errors are
                // captured and deferred so every argument evaluates.
                self.charge(self.cx.costs.observe);
                self.emit(Op::FreeEnter);
                let mut a1 = Label::new();
                self.jump(&mut a1, Op::DeferPush);
                self.int_arg(args, 0);
                self.bind(a1);
                let mut a2 = Label::new();
                self.jump(&mut a2, Op::DeferNext);
                self.any_arg(args, 1);
                self.bind(a2);
                let mut fin = Label::new();
                self.jump(&mut fin, Op::DeferNext);
                self.any_arg(args, 2);
                self.bind(fin);
                self.emit(Op::FreeExit);
                self.emit(Op::ObsCmpFin);
            }
            Builtin::ObsSign => {
                self.charge(self.cx.costs.observe);
                self.emit(Op::FreeEnter);
                let mut a1 = Label::new();
                self.jump(&mut a1, Op::DeferPush);
                self.int_arg(args, 0);
                self.bind(a1);
                let mut fin = Label::new();
                self.jump(&mut fin, Op::DeferNext);
                self.any_arg(args, 1);
                self.bind(fin);
                self.emit(Op::FreeExit);
                self.emit(Op::ObsSignFin);
            }
            Builtin::NextCountdown => {
                self.emit(Op::NextCd);
            }
        }
    }
}

// ---- peephole superinstruction fusion ----------------------------------
//
// Runs after jump patching, over the whole op vector.  Fusion is pure
// repackaging: a fused spec records the absorbed charges at their
// original positions and fetches operands in source order, so the engine
// replays the exact charge/trap sequence of the unfused ops.  Two rules
// keep it sound:
//
// * never fuse across a jump target — only the first op of a fused
//   window may be a target, so no jump can land mid-superinstruction;
// * a `Charge` is absorbed only where the pattern has a seat for it
//   (before either operand), so no charge moves relative to a trap point.

/// A matched superinstruction, pre-interning.
enum Fused {
    Bin(BinSpec),
    BinJ(BinSpec, u32),
    Br(BrSpec, u32),
    Idx(IdxSpec),
    Ret(RetSpec),
    Load(LdSpec),
    Store(StSpec),
    Mov(MvSpec),
    Gate(GateSpec, u32),
    Call(CallSpec),
}

/// Fuses superinstruction patterns in place, rewriting jump targets and
/// function boundaries for the shortened op vector.
fn peephole(p: &mut BcProgram) {
    let n = p.ops.len();
    let mut target = vec![false; n + 1];
    for f in &p.functions {
        target[f.entry as usize] = true;
    }
    for op in &p.ops {
        if let Op::Jump(t)
        | Op::BranchFalse(t)
        | Op::BranchTrue(t)
        | Op::DeferPush(t)
        | Op::DeferNext(t)
        | Op::CdBranch { els: t, .. }
        | Op::SynthCheck { els: t, .. } = op
        {
            // `u32::MAX` placeholders (break outside a loop in a
            // constructed AST) stay dangling, as before the pass.
            if (*t as usize) <= n {
                target[*t as usize] = true;
            }
        }
    }

    let mut new_ops: Vec<Op> = Vec::with_capacity(n);
    let mut map = vec![u32::MAX; n + 1];
    let mut i = 0;
    while i < n {
        map[i] = new_ops.len() as u32;
        match fuse_at(&p.ops[i..], &target[i..]) {
            Some((f, len)) => {
                let op = match f {
                    Fused::Bin(s) => Op::FusedBin(intern(&mut p.bins, s)),
                    Fused::Br(s, t) => Op::FusedBr {
                        spec: intern(&mut p.brs, s),
                        target: t,
                    },
                    Fused::Idx(s) => Op::FusedIdx(intern(&mut p.idxs, s)),
                    Fused::Ret(s) => Op::FusedRet(intern(&mut p.rets, s)),
                    Fused::Load(s) => Op::FusedLoad(intern(&mut p.lds, s)),
                    Fused::Store(s) => Op::FusedStore(intern(&mut p.sts, s)),
                    Fused::Mov(s) => Op::FusedMov(intern(&mut p.mvs, s)),
                    Fused::BinJ(s, t) => Op::FusedBinJ {
                        spec: intern(&mut p.bins, s),
                        target: t,
                    },
                    Fused::Gate(s, t) => Op::CdGate {
                        spec: intern(&mut p.gates, s),
                        els: t,
                    },
                    Fused::Call(s) => Op::CallBind(intern(&mut p.calls, s)),
                };
                new_ops.push(op);
                i += len;
            }
            None => {
                new_ops.push(p.ops[i]);
                i += 1;
            }
        }
    }
    map[n] = new_ops.len() as u32;

    for op in &mut new_ops {
        if let Op::Jump(t)
        | Op::BranchFalse(t)
        | Op::BranchTrue(t)
        | Op::DeferPush(t)
        | Op::DeferNext(t)
        | Op::CdBranch { els: t, .. }
        | Op::SynthCheck { els: t, .. }
        | Op::FusedBr { target: t, .. }
        | Op::FusedBinJ { target: t, .. }
        | Op::CdGate { els: t, .. } = op
        {
            if (*t as usize) <= n {
                debug_assert_ne!(map[*t as usize], u32::MAX, "jump into a fused window");
                *t = map[*t as usize];
            }
        }
    }
    for f in &mut p.functions {
        f.entry = map[f.entry as usize];
        f.end = map[f.end as usize];
    }
    p.ops = new_ops;
}

/// Interns a fused spec, reusing an existing identical entry.
fn intern<T: PartialEq>(table: &mut Vec<T>, s: T) -> u32 {
    if let Some(i) = table.iter().position(|x| *x == s) {
        return i as u32;
    }
    table.push(s);
    (table.len() - 1) as u32
}

/// Tries to match a superinstruction pattern at the start of `ops`;
/// `tgt[j]` flags jump targets (relative).  Returns the fused spec and
/// the number of ops consumed.
fn fuse_at(ops: &[Op], tgt: &[bool]) -> Option<(Fused, usize)> {
    // An op is usable at relative position `j` if it exists and, past the
    // window start, is not a jump target.
    let at = |j: usize| -> Option<Op> {
        if j < ops.len() && (j == 0 || !tgt[j]) {
            Some(ops[j])
        } else {
            None
        }
    };
    let opnd = |j: usize| -> Option<Operand> {
        match at(j)? {
            Op::PushInt(v) => Some(Operand::Const(v)),
            Op::PushNull => Some(Operand::Null),
            Op::LoadLocal(s) => Some(Operand::Local(s)),
            Op::LoadGlobal(g) => Some(Operand::Global(g)),
            Op::LoadLocalOr(s, g) => Some(Operand::LocalOr(s, g)),
            _ => None,
        }
    };

    // Countdown region gate: `[CdDecl|CdCopy] CdBranch [CdUpdate]` (and
    // the bare `CdBranch CdUpdate` pair) — the sequence the sampling
    // transformation plants at every region entry.
    let (pre, pre_decl, jg) = match at(0) {
        Some(Op::CdDecl(s)) => (Some(s), true, 1),
        Some(Op::CdCopy(s)) => (Some(s), false, 1),
        _ => (None, false, 0),
    };
    if let Some(Op::CdBranch { spec, els }) = at(jg) {
        let (dec, len) = match at(jg + 1) {
            Some(Op::CdUpdate(d)) => (Some(d), jg + 2),
            _ => (None, jg + 1),
        };
        if len >= 2 {
            return Some((
                Fused::Gate(
                    GateSpec {
                        pre,
                        pre_decl,
                        br: spec,
                        dec,
                    },
                    els,
                ),
                len,
            ));
        }
    }

    // Region-exit countdown copy folded into the following return.
    if let Some(Op::CdCopy(c)) = at(0) {
        let (stmt, chg, j) = match at(1) {
            Some(Op::Stmt(u)) => (true, u, 2),
            Some(Op::Charge(u)) if u > 0 => (false, u, 2),
            _ => (false, 0, 1),
        };
        let (a, j2) = match opnd(j) {
            Some(a) => (Some(a), j + 1),
            None => (None, j),
        };
        let ret = match (a, at(j2)) {
            (Some(a), Some(Op::Ret)) => Some(a),
            (None, Some(Op::Ret)) => Some(Operand::Stack),
            (None, Some(Op::RetZero)) => Some(Operand::Const(0)),
            (None, Some(Op::RetNull)) => Some(Operand::Null),
            _ => None,
        };
        if let Some(a) = ret {
            return Some((
                Fused::Ret(RetSpec {
                    pre: Some(c),
                    stmt,
                    chg,
                    a,
                }),
                j2 + 1,
            ));
        }
    }

    // Any other region-boundary countdown op folded into the following
    // fused statement: match the rest of the window without the prefix,
    // then attach it to shapes that carry a `pre` seat.  The prefix runs
    // first at execution time, so charge and trap order are unchanged.
    if jg == 1 && ops.len() > 1 && !tgt[1] {
        if let Some((f, len)) = fuse_at(&ops[1..], &tgt[1..]) {
            let attached = match f {
                Fused::Bin(mut s) if s.pre.is_none() => {
                    s.pre = pre;
                    s.pre_decl = pre_decl;
                    Some(Fused::Bin(s))
                }
                Fused::BinJ(mut s, t) if s.pre.is_none() => {
                    s.pre = pre;
                    s.pre_decl = pre_decl;
                    Some(Fused::BinJ(s, t))
                }
                Fused::Mov(mut s) if s.pre.is_none() => {
                    s.pre = pre;
                    s.pre_decl = pre_decl;
                    Some(Fused::Mov(s))
                }
                _ => None,
            };
            if let Some(f) = attached {
                return Some((f, len + 1));
            }
        }
    }

    // A call whose result feeds straight into a store: record the
    // destination in the frame so the return applies it directly.
    if let Some(Op::Call { func, argc }) = at(0) {
        let dst = match at(1) {
            Some(Op::BindLocal(s)) => Some(Dest::Bind(s)),
            Some(Op::AssignLocal(s)) => Some(Dest::Local(s)),
            Some(Op::AssignGlobal(g)) => Some(Dest::Global(g)),
            Some(Op::AssignLocalOr(s, g)) => Some(Dest::LocalOr(s, g)),
            _ => None,
        };
        if let Some(dst) = dst {
            return Some((Fused::Call(CallSpec { func, argc, dst }), 2));
        }
    }

    // Optional leading statement head or charge.  `Charge(0)` never
    // occurs with nonzero cost models; leaving it unfused keeps the
    // "charge seat present ⇔ amount nonzero" encoding exact.
    let mut j = 0;
    let mut stmt = false;
    let mut lead = 0u32;
    match at(0) {
        Some(Op::Stmt(c)) => {
            stmt = true;
            lead = c;
            j = 1;
        }
        Some(Op::Charge(c)) if c > 0 => {
            lead = c;
            j = 1;
        }
        _ => {}
    }

    // Optional first operand.
    let s0 = opnd(j);
    let j0 = j + usize::from(s0.is_some());

    // Pointer-index prologue: `ptr check [charge] idx ExpectInt`.
    let chk = match at(j0) {
        Some(Op::LoadPtrCheck) => Some(None),
        Some(Op::StorePtrCheck(name)) => Some(Some(name)),
        _ => None,
    };
    if let Some(store_name) = chk {
        // A stacked pointer is never directly preceded by a charge or a
        // statement head (its producing ops sit in between).
        if s0.is_none() && (stmt || lead > 0) {
            return None;
        }
        let mut k = j0 + 1;
        let mut c_idx = 0;
        if let Some(Op::Charge(c)) = at(k) {
            if c > 0 {
                c_idx = c;
                k += 1;
            }
        }
        let idx = opnd(k)?;
        k += 1;
        if !matches!(at(k), Some(Op::ExpectInt)) {
            return None;
        }
        let spec = IdxSpec {
            stmt,
            c_ptr: lead,
            ptr: s0.unwrap_or(Operand::Stack),
            store_name,
            c_idx,
            idx,
        };
        let end = k + 1;
        // Heap tails: the compiler always follows a load-flavor prologue
        // with `HeapLoad` (then possibly a store op for the result) and a
        // store-flavor prologue with the value expression and `HeapStore`.
        // Fuse the whole access when the remaining pieces are simple.
        if store_name.is_none() {
            if matches!(at(end), Some(Op::HeapLoad)) {
                let (dst, len) = match at(end + 1) {
                    Some(Op::BindLocal(s)) => (Dest::Bind(s), end + 2),
                    Some(Op::AssignLocal(s)) => (Dest::Local(s), end + 2),
                    Some(Op::AssignGlobal(g)) => (Dest::Global(g), end + 2),
                    Some(Op::AssignLocalOr(s, g)) => (Dest::LocalOr(s, g), end + 2),
                    Some(Op::Ret) => (Dest::Ret, end + 2),
                    _ => (Dest::Push, end + 1),
                };
                return Some((Fused::Load(LdSpec { idx: spec, dst }), len));
            }
        } else {
            let mut kv = end;
            let mut c_val = 0;
            if let Some(Op::Charge(c)) = at(kv) {
                if c > 0 {
                    c_val = c;
                    kv += 1;
                }
            }
            if let Some(val) = opnd(kv) {
                if matches!(at(kv + 1), Some(Op::HeapStore)) {
                    return Some((
                        Fused::Store(StSpec {
                            idx: spec,
                            c_val,
                            val,
                        }),
                        kv + 2,
                    ));
                }
            }
        }
        return Some((Fused::Idx(spec), end));
    }

    // Bare truthiness branch: `[charge] operand BranchFalse/True`.
    if let (Some(a), Some(op)) = (s0, at(j0)) {
        let br = match op {
            Op::BranchFalse(t) => Some((t, false)),
            Op::BranchTrue(t) => Some((t, true)),
            _ => None,
        };
        if let Some((t, jump_if)) = br {
            return Some((
                Fused::Br(
                    BrSpec {
                        stmt,
                        chg_a: lead,
                        a,
                        chg_b: 0,
                        b: Operand::Const(0),
                        cmp: None,
                        jump_if,
                    },
                    t,
                ),
                j0 + 1,
            ));
        }
    }

    // Fused return: `[stmt/charge] operand Ret`.
    if let (Some(a), Some(Op::Ret)) = (s0, at(j0)) {
        return Some((
            Fused::Ret(RetSpec {
                pre: None,
                stmt,
                chg: lead,
                a,
            }),
            j0 + 1,
        ));
    }

    // Optional second (charge, operand) pair, then the binary operator.
    let mut k = j0;
    let mut chg1 = 0u32;
    let mut s1 = None;
    if s0.is_some() {
        let mut k2 = k;
        let mut c = 0;
        if let Some(Op::Charge(u)) = at(k2) {
            if u > 0 {
                c = u;
                k2 += 1;
            }
        }
        if let Some(s) = opnd(k2) {
            chg1 = c;
            s1 = Some(s);
            k = k2 + 1;
        }
    }
    let Some(Op::Binary(op)) = at(k) else {
        // No binary op: fuse the single charged fetch as a move into the
        // store that follows, or a bare charged push (a call argument).
        let a = s0?;
        let (dst, len) = match at(j0) {
            Some(Op::BindLocal(s)) => (Dest::Bind(s), j0 + 1),
            Some(Op::AssignLocal(s)) => (Dest::Local(s), j0 + 1),
            Some(Op::AssignGlobal(g)) => (Dest::Global(g), j0 + 1),
            Some(Op::AssignLocalOr(s, g)) => (Dest::LocalOr(s, g), j0 + 1),
            _ => (Dest::Push, j0),
        };
        if len < 2 {
            return None;
        }
        return Some((
            Fused::Mov(MvSpec {
                pre: None,
                pre_decl: false,
                stmt,
                chg: lead,
                a,
                dst,
            }),
            len,
        ));
    };
    k += 1;
    let (chg_a, a, chg_b, b) = match (s0, s1) {
        (Some(a), Some(b)) => (lead, a, chg1, b),
        // One fused operand is the *right*-hand one; the left is already
        // on the stack, and its charges happened while producing it.  A
        // statement head can't precede this shape (statements start with
        // an empty expression stack).
        (Some(b), None) => {
            if stmt {
                return None;
            }
            (0, Operand::Stack, lead, b)
        }
        (None, None) => {
            if stmt || lead > 0 {
                return None;
            }
            (0, Operand::Stack, 0, Operand::Stack)
        }
        (None, Some(_)) => unreachable!("second operand only parsed after the first"),
    };

    // Optional tail: a branch or a store.
    match at(k) {
        Some(Op::BranchFalse(t) | Op::BranchTrue(t)) => {
            let jump_if = matches!(at(k), Some(Op::BranchTrue(_)));
            Some((
                Fused::Br(
                    BrSpec {
                        stmt,
                        chg_a,
                        a,
                        chg_b,
                        b,
                        cmp: Some(op),
                        jump_if,
                    },
                    t,
                ),
                k + 1,
            ))
        }
        tail => {
            let (dst, len) = match tail {
                Some(Op::BindLocal(s)) => (Dest::Bind(s), k + 1),
                Some(Op::AssignLocal(s)) => (Dest::Local(s), k + 1),
                Some(Op::AssignGlobal(g)) => (Dest::Global(g), k + 1),
                Some(Op::AssignLocalOr(s, g)) => (Dest::LocalOr(s, g), k + 1),
                Some(Op::Ret) => (Dest::Ret, k + 1),
                _ => (Dest::Push, k),
            };
            if len < 2 {
                // A bare stack-stack `Binary` with no tail fuses nothing.
                return None;
            }
            let spec = BinSpec {
                pre: None,
                pre_decl: false,
                stmt,
                chg_a,
                a,
                chg_b,
                b,
                op,
                dst,
            };
            // A trailing unconditional jump (the loop back-edge) rides
            // along for free.
            if dst != Dest::Ret {
                if let Some(Op::Jump(t)) = at(len) {
                    return Some((Fused::BinJ(spec, t), len + 1));
                }
            }
            Some((Fused::Bin(spec), len))
        }
    }
}
