//! A small deterministic PRNG.
//!
//! Every experiment in this repository must be reproducible from a seed, so
//! rather than depending on platform entropy we carry our own PCG-XSH-RR
//! 64/32 generator (O'Neill 2014).  It is fast, statistically solid for this
//! purpose, and — unlike `rand`'s `StdRng` — its output sequence is fixed by
//! this crate rather than by a dependency version.

const MULTIPLIER: u64 = 6364136223846793005;

/// PCG-XSH-RR 64/32: 64 bits of state, 32 bits of output per step.
///
/// ```
/// use cbi_sampler::Pcg32;
/// let mut a = Pcg32::new(7);
/// let mut b = Pcg32::new(7);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a seed, using the PCG default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator on an explicit stream; generators with different
    /// streams produce uncorrelated sequences even from the same seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        // Standard PCG initialization: advance once, add seed, advance again.
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns a uniform `f64` in the half-open interval `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`, suitable as
    /// input to `ln` without risking `ln(0)`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)`, like the paper's `rnd(n)`.
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection sampling over the top 64 bits keeps the result unbiased.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Splits off an independent child generator, advancing `self`.
    pub fn fork(&mut self) -> Pcg32 {
        let seed = self.next_u64();
        let stream = self.next_u64();
        Pcg32::with_stream(seed, stream)
    }

    /// Fills a byte buffer with random data, 4 bytes per generator step.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Pcg32::new(123);
        let mut b = Pcg32::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let av: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let bv: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::with_stream(1, 10);
        let mut b = Pcg32::with_stream(1, 11);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut rng = Pcg32::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = Pcg32::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg32::new(2024);
        let n = 8u64;
        let trials = 80_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            counts[rng.below(n) as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket off by {dev}");
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Pcg32::new(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fill_bytes_fills_unaligned_lengths() {
        let mut rng = Pcg32::new(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        let mut rng = Pcg32::new(1);
        let _ = rng.below(0);
    }
}
