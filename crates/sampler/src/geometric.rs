//! Geometrically distributed next-sample countdowns (§2.1).
//!
//! A Bernoulli process with success probability `p` has inter-arrival times
//! that follow the geometric distribution on `{1, 2, 3, …}`:
//! `P(N = k) = (1 - p)^(k-1) · p`, with mean `1/p`.  Drawing countdowns from
//! this distribution is *exactly* equivalent to tossing the biased coin at
//! every site, but allows the next sample to be anticipated — the key to the
//! fast-path/slow-path transformation.

use crate::countdown::CountdownSource;
use crate::rng::Pcg32;
use crate::SamplingDensity;

/// A geometric countdown generator realizing a fair Bernoulli process.
///
/// Countdowns are produced by inverting the geometric CDF:
/// `N = ceil(ln(U) / ln(1 - p))` for `U` uniform on `(0, 1]`.
///
/// ```
/// use cbi_sampler::{CountdownSource, Geometric, SamplingDensity};
/// let mut g = Geometric::new(SamplingDensity::one_in(100), 1);
/// let mean: f64 = (0..20_000).map(|_| g.next_countdown() as f64).sum::<f64>() / 20_000.0;
/// assert!((mean - 100.0).abs() < 5.0, "sample mean {mean} should be near 100");
/// ```
#[derive(Debug, Clone)]
pub struct Geometric {
    density: SamplingDensity,
    rng: Pcg32,
    /// Precomputed `ln(1 - p)`; `None` when `p == 1` (always sample).
    log_q: Option<f64>,
}

impl Geometric {
    /// Creates a generator for the given density, seeded deterministically.
    pub fn new(density: SamplingDensity, seed: u64) -> Self {
        Self::with_rng(density, Pcg32::new(seed))
    }

    /// Creates a generator driven by an existing PRNG.
    pub fn with_rng(density: SamplingDensity, rng: Pcg32) -> Self {
        let p = density.probability();
        let log_q = if p >= 1.0 { None } else { Some((1.0 - p).ln()) };
        Geometric {
            density,
            rng,
            log_q,
        }
    }

    /// The density this generator was built for.
    pub fn density(&self) -> SamplingDensity {
        self.density
    }

    /// Draws one geometric variate on `{1, 2, 3, …}` with mean `1/p`.
    pub fn draw(&mut self) -> u64 {
        match self.log_q {
            // p == 1: the next opportunity is always sampled.
            None => 1,
            Some(log_q) => {
                let u = self.rng.next_f64_open();
                // ln(u) <= 0 and log_q < 0, so the ratio is >= 0.
                let k = (u.ln() / log_q).ceil();
                if k < 1.0 {
                    1
                } else if k >= u64::MAX as f64 {
                    // The paper notes the odds of a 1/100 countdown exceeding
                    // 2^32 - 1 are below 1 in 10^107; we saturate anyway.
                    u64::MAX
                } else {
                    k as u64
                }
            }
        }
    }
}

impl CountdownSource for Geometric {
    fn next_countdown(&mut self) -> u64 {
        cbi_telemetry::count("sampler.refills", 1);
        self.draw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_density_yields_countdown_one() {
        let mut g = Geometric::new(SamplingDensity::always(), 3);
        for _ in 0..100 {
            assert_eq!(g.draw(), 1);
        }
    }

    #[test]
    fn countdowns_are_at_least_one() {
        let mut g = Geometric::new(SamplingDensity::new(0.9).unwrap(), 11);
        for _ in 0..10_000 {
            assert!(g.draw() >= 1);
        }
    }

    #[test]
    fn sample_mean_matches_inverse_density() {
        for &d in &[2u64, 10, 100, 1000] {
            let mut g = Geometric::new(SamplingDensity::one_in(d), 17);
            let n = 200_000 / d.max(1) * d; // plenty of draws
            let n = n.clamp(50_000, 200_000);
            let sum: f64 = (0..n).map(|_| g.draw() as f64).sum();
            let mean = sum / n as f64;
            let expect = d as f64;
            let tol = expect * 0.05;
            assert!(
                (mean - expect).abs() < tol,
                "density 1/{d}: mean {mean} not within {tol} of {expect}"
            );
        }
    }

    #[test]
    fn sample_variance_matches_geometric() {
        // Var = (1-p)/p^2; for p = 1/10 that is 90.
        let p = 0.1;
        let mut g = Geometric::new(SamplingDensity::new(p).unwrap(), 23);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| g.draw() as f64).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let expect = (1.0 - p) / (p * p);
        assert!(
            (var - expect).abs() < expect * 0.1,
            "variance {var} vs expected {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Geometric::new(SamplingDensity::one_in(100), 5);
        let mut b = Geometric::new(SamplingDensity::one_in(100), 5);
        for _ in 0..1000 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn memorylessness_of_implied_process() {
        // Expand countdowns back into coin tosses and check that the
        // conditional sampling rate after a skip equals the overall rate.
        let p = 0.05;
        let mut g = Geometric::new(SamplingDensity::new(p).unwrap(), 31);
        let mut tosses = Vec::new();
        while tosses.len() < 400_000 {
            let k = g.draw();
            tosses.extend(std::iter::repeat_n(false, (k - 1) as usize));
            tosses.push(true);
        }
        let after_skip: Vec<bool> = tosses.windows(2).filter(|w| !w[0]).map(|w| w[1]).collect();
        let rate = after_skip.iter().filter(|&&t| t).count() as f64 / after_skip.len() as f64;
        assert!(
            (rate - p).abs() < 0.005,
            "post-skip rate {rate} should equal {p}"
        );
    }

    #[test]
    fn draws_always_positive() {
        // Randomized sweep over densities and seeds (seeded, reproducible).
        let mut rng = Pcg32::new(0xd3a9);
        for _ in 0..256 {
            let p = (rng.next_f64() * (1.0 - 1e-6) + 1e-6).min(1.0);
            let seed = rng.below(1000);
            let mut g = Geometric::new(SamplingDensity::new(p).unwrap(), seed);
            for _ in 0..50 {
                assert!(g.draw() >= 1, "p={p} seed={seed}");
            }
        }
    }

    #[test]
    fn draw_with_p_one_is_always_one() {
        for seed in 0u64..1000 {
            let mut g = Geometric::new(SamplingDensity::always(), seed);
            assert_eq!(g.draw(), 1, "seed={seed}");
        }
    }
}
