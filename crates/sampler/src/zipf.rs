//! Seeded categorical and Zipf samplers.
//!
//! A simulated user community is not uniform: a handful of workloads
//! dominate while a long tail of rare inputs carries the interesting
//! corner cases.  The fleet simulator models that skew with a Zipf
//! distribution over a finite input pool (rank `k` drawn with weight
//! `1/(k+1)^s`), and draws client attributes — sampling density,
//! instrumentation variant — from explicit categorical mixes.
//!
//! Both samplers precompute a cumulative weight table once and then
//! sample by binary search on a single uniform draw, so a sample costs
//! `O(log n)` with no floating-point accumulation at sampling time: the
//! drawn index depends only on comparisons against the fixed table,
//! which makes the sample *sequence* a pure function of the seed.

use crate::rng::Pcg32;
use std::error::Error;
use std::fmt;

/// Error constructing a categorical distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum CategoricalError {
    /// The weight vector was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    BadWeight(f64),
    /// All weights were zero.
    ZeroMass,
}

impl fmt::Display for CategoricalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CategoricalError::Empty => f.write_str("categorical needs at least one weight"),
            CategoricalError::BadWeight(w) => {
                write!(f, "categorical weight must be finite and >= 0, got {w}")
            }
            CategoricalError::ZeroMass => f.write_str("categorical weights sum to zero"),
        }
    }
}

impl Error for CategoricalError {}

/// A fixed categorical distribution sampled by inversion.
///
/// ```
/// use cbi_sampler::{Categorical, Pcg32};
/// let mix = Categorical::new(&[8.0, 1.0, 1.0]).unwrap();
/// let mut rng = Pcg32::new(7);
/// let k = mix.sample(&mut rng);
/// assert!(k < 3);
/// ```
#[derive(Debug, Clone)]
pub struct Categorical {
    /// Strictly increasing cumulative weights; the last entry is the
    /// total mass.
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds a distribution from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`CategoricalError`] if `weights` is empty, contains a
    /// negative or non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, CategoricalError> {
        if weights.is_empty() {
            return Err(CategoricalError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(CategoricalError::BadWeight(w));
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(CategoricalError::ZeroMass);
        }
        Ok(Categorical { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no categories (never true for a
    /// constructed value; provided for the conventional pairing).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Total weight mass.
    pub fn total(&self) -> f64 {
        *self.cumulative.last().expect("non-empty by construction")
    }

    /// Draws one category index, consuming one uniform from `rng`.
    ///
    /// Zero-weight categories are never drawn: the search skips runs of
    /// equal cumulative values.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let x = rng.next_f64() * self.total();
        // First index whose cumulative weight strictly exceeds x; ties on
        // equal cumulative values (zero-weight categories) resolve past
        // the run, so a zero-weight category cannot be selected.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// The probability of category `k` under the normalized weights.
    pub fn probability(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - lo) / self.total()
    }
}

/// A Zipf distribution over ranks `0..n`: rank `k` has weight
/// `1/(k+1)^s`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s`
/// concentrates mass on the leading ranks (the paper's deployment
/// argument is exactly that a huge community still covers the tail).
///
/// ```
/// use cbi_sampler::{Pcg32, Zipf};
/// let z = Zipf::new(100, 1.0).unwrap();
/// let mut rng = Pcg32::new(3);
/// assert!(z.sample(&mut rng) < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    categorical: Categorical,
    exponent: f64,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CategoricalError`] if `n == 0` or `s` is negative or
    /// non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, CategoricalError> {
        if !s.is_finite() || s < 0.0 {
            return Err(CategoricalError::BadWeight(s));
        }
        let weights: Vec<f64> = (0..n).map(|k| ((k + 1) as f64).powf(-s)).collect();
        Ok(Zipf {
            categorical: Categorical::new(&weights)?,
            exponent: s,
        })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.categorical.len()
    }

    /// Whether the distribution has no ranks (never true for a
    /// constructed value).
    pub fn is_empty(&self) -> bool {
        self.categorical.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `0..n`, consuming one uniform from `rng`.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        self.categorical.sample(rng)
    }

    /// The probability of rank `k`: `(k+1)^-s / H_{n,s}`.
    pub fn probability(&self, k: usize) -> f64 {
        self.categorical.probability(k)
    }

    /// The mean rank (0-based) of the distribution, in closed form from
    /// the weight table.
    pub fn mean(&self) -> f64 {
        (0..self.len())
            .map(|k| k as f64 * self.probability(k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(dist: &Zipf, seed: u64, draws: usize) -> Vec<f64> {
        let mut rng = Pcg32::new(seed);
        let mut counts = vec![0u64; dist.len()];
        for _ in 0..draws {
            counts[dist.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn categorical_rejects_degenerate_inputs() {
        assert_eq!(Categorical::new(&[]).unwrap_err(), CategoricalError::Empty);
        assert!(matches!(
            Categorical::new(&[1.0, -0.5]).unwrap_err(),
            CategoricalError::BadWeight(_)
        ));
        assert!(matches!(
            Categorical::new(&[1.0, f64::NAN]).unwrap_err(),
            CategoricalError::BadWeight(_)
        ));
        assert_eq!(
            Categorical::new(&[0.0, 0.0]).unwrap_err(),
            CategoricalError::ZeroMass
        );
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn categorical_errors_are_displayable() {
        assert!(Categorical::new(&[])
            .unwrap_err()
            .to_string()
            .contains("one"));
        assert!(Categorical::new(&[-1.0])
            .unwrap_err()
            .to_string()
            .contains("-1"));
        assert!(Categorical::new(&[0.0])
            .unwrap_err()
            .to_string()
            .contains("zero"));
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let dist = Categorical::new(&[6.0, 3.0, 1.0]).unwrap();
        let mut rng = Pcg32::new(11);
        let draws = 60_000;
        let mut counts = [0u64; 3];
        for _ in 0..draws {
            counts[dist.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = dist.probability(k);
            let got = c as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "category {k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_are_never_drawn() {
        let dist = Categorical::new(&[1.0, 0.0, 0.0, 2.0]).unwrap();
        let mut rng = Pcg32::new(5);
        for _ in 0..5_000 {
            let k = dist.sample(&mut rng);
            assert!(k == 0 || k == 3, "drew zero-weight category {k}");
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let dist = Zipf::new(8, 0.0).unwrap();
        for k in 0..8 {
            assert!((dist.probability(k) - 0.125).abs() < 1e-12);
        }
        let freq = frequencies(&dist, 3, 40_000);
        for (k, &f) in freq.iter().enumerate() {
            assert!((f - 0.125).abs() < 0.01, "rank {k}: {f}");
        }
    }

    #[test]
    fn zipf_head_matches_harmonic_normalization() {
        // P(rank 0) = 1 / H_{n,s}; pin the empirical frequency against
        // the closed form for a classic n=100, s=1 instance.
        let n = 100;
        let dist = Zipf::new(n, 1.0).unwrap();
        let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        assert!((dist.probability(0) - 1.0 / h).abs() < 1e-12);
        let freq = frequencies(&dist, 17, 120_000);
        assert!(
            (freq[0] - 1.0 / h).abs() < 0.01,
            "rank-0 frequency {} vs closed form {}",
            freq[0],
            1.0 / h
        );
    }

    #[test]
    fn zipf_empirical_moments_match_closed_form() {
        let dist = Zipf::new(50, 1.2).unwrap();
        let freq = frequencies(&dist, 23, 200_000);
        let empirical_mean: f64 = freq.iter().enumerate().map(|(k, f)| k as f64 * f).sum();
        let mean = dist.mean();
        assert!(
            (empirical_mean - mean).abs() < 0.1,
            "empirical mean {empirical_mean} vs closed form {mean}"
        );
    }

    #[test]
    fn zipf_frequencies_are_monotone_in_rank() {
        let dist = Zipf::new(20, 1.5).unwrap();
        let freq = frequencies(&dist, 29, 150_000);
        // Probabilities decay geometrically at s=1.5; adjacent empirical
        // frequencies may tie in the tail, so compare with slack against
        // the exact ordering over the meaningful head.
        for k in 0..8 {
            assert!(
                freq[k] + 0.005 > freq[k + 1],
                "rank {k}: {} then {}",
                freq[k],
                freq[k + 1]
            );
        }
        assert!(dist.probability(0) > 2.0 * dist.probability(3));
    }

    #[test]
    fn sample_sequence_is_pinned_by_seed() {
        // The drawn sequence is a pure function of (n, s, seed): pin it,
        // so any drift in the RNG, the weight table, or the search rule
        // fails loudly.  A fleet replay depends on this exactness.
        let dist = Zipf::new(16, 1.0).unwrap();
        let mut rng = Pcg32::new(0xf1ee7);
        let drawn: Vec<usize> = (0..12).map(|_| dist.sample(&mut rng)).collect();
        let again: Vec<usize> = {
            let d = Zipf::new(16, 1.0).unwrap();
            let mut rng = Pcg32::new(0xf1ee7);
            (0..12).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(drawn, again);
        // Head-heavy: at s=1 over 16 ranks, rank 0 carries ~30% of the
        // mass, so a 12-draw prefix lands mostly in the head.
        assert!(drawn.iter().filter(|&&k| k < 4).count() >= 6, "{drawn:?}");
    }

    #[test]
    fn different_seeds_draw_different_sequences() {
        let dist = Zipf::new(64, 1.0).unwrap();
        let seq = |seed: u64| {
            let mut rng = Pcg32::new(seed);
            (0..16).map(|_| dist.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_ne!(seq(1), seq(2));
    }
}
