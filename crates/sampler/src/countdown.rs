//! Countdown sources: how an instrumented program refills its next-sample
//! countdown when it reaches zero.
//!
//! The paper's deployment pre-generates a bank of 1024 geometric countdowns
//! per run (§3.1.1); [`CountdownBank`] models this.  [`Periodic`] and
//! [`UniformInterval`] model the prior art the paper contrasts against in
//! §2.1 and §4: strictly periodic triggers (Arnold–Ryder) and uniformly
//! jittered intervals (Digital Continuous Profiling Infrastructure).  Both
//! fail the fairness checks in [`crate::fairness`].

use crate::geometric::Geometric;
use crate::rng::Pcg32;
use crate::SamplingDensity;

/// Anything that can supply the next-sample countdown for the instrumented
/// runtime.
///
/// A countdown of `k` means: skip `k - 1` sampling opportunities, then
/// sample the `k`-th.  Implementations must return values `>= 1`.
pub trait CountdownSource {
    /// Produces the next countdown (always `>= 1`).
    fn next_countdown(&mut self) -> u64;
}

impl<T: CountdownSource + ?Sized> CountdownSource for Box<T> {
    fn next_countdown(&mut self) -> u64 {
        (**self).next_countdown()
    }
}

impl<T: CountdownSource + ?Sized> CountdownSource for &mut T {
    fn next_countdown(&mut self) -> u64 {
        (**self).next_countdown()
    }
}

/// A pre-generated, cycling bank of countdowns.
///
/// §3.1.1: "each run used a different pre-generated bank of 1024
/// geometrically distributed random countdowns."  A bank of `n` countdowns
/// for `1/d` sampling encodes on average `n·d` coin tosses, so modest banks
/// last a long time (§2.1).
///
/// ```
/// use cbi_sampler::{CountdownBank, CountdownSource, SamplingDensity};
/// let mut bank = CountdownBank::generate(SamplingDensity::one_in(10), 1024, 7);
/// assert_eq!(bank.len(), 1024);
/// let first = bank.next_countdown();
/// assert!(first >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct CountdownBank {
    values: Vec<u64>,
    cursor: usize,
}

impl CountdownBank {
    /// Builds a bank from explicit countdown values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a zero (a zero countdown can
    /// never be consumed and would wedge the runtime).
    pub fn from_values(values: Vec<u64>) -> Self {
        assert!(!values.is_empty(), "countdown bank must be nonempty");
        assert!(
            values.iter().all(|&v| v >= 1),
            "countdowns must be at least 1"
        );
        CountdownBank { values, cursor: 0 }
    }

    /// Generates a bank of `n` geometric countdowns for the given density.
    pub fn generate(density: SamplingDensity, n: usize, seed: u64) -> Self {
        let mut g = Geometric::new(density, seed);
        let values = (0..n.max(1)).map(|_| g.draw()).collect();
        CountdownBank::from_values(values)
    }

    /// Regenerates this bank in place from a fresh seed, reusing the
    /// existing allocation.  Equivalent to
    /// `*self = CountdownBank::generate(density, self.len(), seed)` but
    /// without reallocating; campaign workers use this to recycle one bank
    /// buffer across thousands of trials.
    pub fn reseed(&mut self, density: SamplingDensity, seed: u64) {
        cbi_telemetry::count("sampler.bank_reseeds", 1);
        let mut g = Geometric::new(density, seed);
        for v in &mut self.values {
            *v = g.draw();
        }
        self.cursor = 0;
    }

    /// Number of countdowns in the bank.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the bank is empty (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying countdown values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

impl CountdownSource for CountdownBank {
    fn next_countdown(&mut self) -> u64 {
        // Each refill marks one sample boundary: the runtime only asks for
        // a new countdown after taking (or seeding) a sample.
        cbi_telemetry::count("sampler.refills", 1);
        let v = self.values[self.cursor];
        self.cursor = (self.cursor + 1) % self.values.len();
        v
    }
}

/// A [`CountdownBank`] that draws its values on first use instead of up
/// front.
///
/// The countdown sequence is identical to an eagerly generated bank of the
/// same density, capacity, and seed — the first `cap` refills come from the
/// same [`Geometric`] stream, and the bank cycles after that — but a run
/// that consumes only a handful of refills (the common case at 1/100
/// sampling) never pays for the draws it doesn't use.  Campaign workers
/// recycle one `LazyBank` across thousands of trials via [`reseed`].
///
/// [`reseed`]: LazyBank::reseed
#[derive(Debug, Clone)]
pub struct LazyBank {
    gen: Geometric,
    values: Vec<u64>,
    cap: usize,
    cursor: usize,
}

impl LazyBank {
    /// Creates a lazy bank of (up to) `cap` geometric countdowns,
    /// equivalent to `CountdownBank::generate(density, cap, seed)`.
    pub fn new(density: SamplingDensity, cap: usize, seed: u64) -> Self {
        LazyBank {
            gen: Geometric::new(density, seed),
            values: Vec::new(),
            cap: cap.max(1),
            cursor: 0,
        }
    }

    /// Restarts this bank from a fresh seed, reusing the value buffer;
    /// equivalent to [`CountdownBank::reseed`] on an eager bank.
    pub fn reseed(&mut self, density: SamplingDensity, seed: u64) {
        cbi_telemetry::count("sampler.bank_reseeds", 1);
        self.gen = Geometric::new(density, seed);
        self.values.clear();
        self.cursor = 0;
    }
}

impl CountdownSource for LazyBank {
    fn next_countdown(&mut self) -> u64 {
        cbi_telemetry::count("sampler.refills", 1);
        let v = if self.cursor < self.values.len() {
            self.values[self.cursor]
        } else {
            // `Geometric::draw` is telemetry-free, so the refill count
            // matches the eager bank draw for draw.
            let v = self.gen.draw();
            self.values.push(v);
            v
        };
        self.cursor += 1;
        if self.cursor == self.cap {
            self.cursor = 0;
        }
        v
    }
}

/// Strictly periodic countdowns: exactly one sample per `period`
/// opportunities, in the style of Arnold–Ryder counter-based sampling.
///
/// This is the "trivially periodic" strategy the paper rejects in §2.1: if
/// two sites alternate in a loop, one of them is sampled on every period-th
/// iteration and the other never.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodic {
    period: u64,
}

impl Periodic {
    /// Creates a periodic source with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "period must be nonzero");
        Periodic { period }
    }

    /// The sampling period.
    pub fn period(self) -> u64 {
        self.period
    }
}

impl CountdownSource for Periodic {
    fn next_countdown(&mut self) -> u64 {
        self.period
    }
}

/// Uniformly jittered intervals, as in the Digital Continuous Profiling
/// Infrastructure (§4): one sample every `lo..=hi` opportunities, uniform.
///
/// Samples produced this way are not independent: after one sample there is
/// zero probability of another within `lo - 1` opportunities.
#[derive(Debug, Clone)]
pub struct UniformInterval {
    lo: u64,
    hi: u64,
    rng: Pcg32,
}

impl UniformInterval {
    /// Creates a source drawing intervals uniformly from `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > hi`.
    pub fn new(lo: u64, hi: u64, seed: u64) -> Self {
        assert!(lo >= 1, "interval lower bound must be at least 1");
        assert!(lo <= hi, "interval must be nonempty");
        UniformInterval {
            lo,
            hi,
            rng: Pcg32::new(seed),
        }
    }
}

impl CountdownSource for UniformInterval {
    fn next_countdown(&mut self) -> u64 {
        self.lo + self.rng.below(self.hi - self.lo + 1)
    }
}

/// A direct per-site Bernoulli coin, the naïve strategy of §2.1
/// (`if (rnd(100) == 0) check(...)`).
///
/// Statistically identical to [`Geometric`] but with per-site cost; kept as
/// the reference implementation for fairness testing.
#[derive(Debug, Clone)]
pub struct Bernoulli {
    density: SamplingDensity,
    rng: Pcg32,
}

impl Bernoulli {
    /// Creates a reference coin-tosser for the given density.
    pub fn new(density: SamplingDensity, seed: u64) -> Self {
        Bernoulli {
            density,
            rng: Pcg32::new(seed),
        }
    }

    /// Tosses the biased coin once: `true` means "sample this site".
    pub fn toss(&mut self) -> bool {
        self.rng.next_f64() < self.density.probability()
    }
}

impl CountdownSource for Bernoulli {
    /// Expands coin tosses into the equivalent countdown representation.
    fn next_countdown(&mut self) -> u64 {
        let mut k = 1;
        while !self.toss() {
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_cycles_through_values() {
        let mut bank = CountdownBank::from_values(vec![3, 1, 4]);
        let got: Vec<u64> = (0..7).map(|_| bank.next_countdown()).collect();
        assert_eq!(got, vec![3, 1, 4, 3, 1, 4, 3]);
    }

    #[test]
    fn generated_bank_has_requested_size() {
        let bank = CountdownBank::generate(SamplingDensity::one_in(100), 1024, 9);
        assert_eq!(bank.len(), 1024);
        assert!(!bank.is_empty());
        assert!(bank.values().iter().all(|&v| v >= 1));
    }

    #[test]
    fn generated_bank_mean_near_density_inverse() {
        let bank = CountdownBank::generate(SamplingDensity::one_in(50), 4096, 13);
        let mean: f64 = bank.values().iter().map(|&v| v as f64).sum::<f64>() / bank.len() as f64;
        assert!((mean - 50.0).abs() < 5.0, "bank mean {mean}");
    }

    #[test]
    fn reseed_matches_fresh_generate() {
        let mut bank = CountdownBank::generate(SamplingDensity::one_in(10), 64, 1);
        bank.next_countdown(); // advance the cursor so reseed must rewind it
        bank.reseed(SamplingDensity::one_in(10), 2);
        let fresh = CountdownBank::generate(SamplingDensity::one_in(10), 64, 2);
        assert_eq!(bank.values(), fresh.values());
        let a: Vec<u64> = {
            let mut b = bank.clone();
            (0..5).map(|_| b.next_countdown()).collect()
        };
        let b: Vec<u64> = {
            let mut f = fresh.clone();
            (0..5).map(|_| f.next_countdown()).collect()
        };
        assert_eq!(a, b, "reseed must rewind the cursor");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_bank_panics() {
        let _ = CountdownBank::from_values(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_countdown_panics() {
        let _ = CountdownBank::from_values(vec![1, 0, 2]);
    }

    #[test]
    fn periodic_is_constant() {
        let mut p = Periodic::new(100);
        assert_eq!(p.period(), 100);
        for _ in 0..5 {
            assert_eq!(p.next_countdown(), 100);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn periodic_zero_panics() {
        let _ = Periodic::new(0);
    }

    #[test]
    fn uniform_interval_in_bounds() {
        let mut u = UniformInterval::new(60, 64, 3);
        for _ in 0..1000 {
            let v = u.next_countdown();
            assert!((60..=64).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn uniform_interval_reversed_panics() {
        let _ = UniformInterval::new(10, 5, 0);
    }

    #[test]
    fn bernoulli_countdown_mean_matches() {
        let mut b = Bernoulli::new(SamplingDensity::one_in(20), 77);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| b.next_countdown() as f64).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn boxed_source_dispatches() {
        let mut boxed: Box<dyn CountdownSource> = Box::new(Periodic::new(7));
        assert_eq!(boxed.next_countdown(), 7);
    }

    #[test]
    fn mut_ref_source_dispatches() {
        let mut p = Periodic::new(9);
        let mut r = &mut p;
        assert_eq!(CountdownSource::next_countdown(&mut r), 9);
    }
}
