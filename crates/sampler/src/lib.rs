//! Sampling runtime for cooperative bug isolation.
//!
//! This crate implements the statistical core of the sampling framework from
//! *Bug Isolation via Remote Program Sampling* (Liblit, Aiken, Zheng, Jordan;
//! PLDI 2003), §2.1: instead of tossing a biased coin at every
//! instrumentation site, the instrumented program maintains a *next-sample
//! countdown* drawn from a geometric distribution.  The countdown predicts
//! how many sampling opportunities will be skipped before the next sample is
//! taken, which lets instrumented code branch into an instrumentation-free
//! fast path whenever the countdown exceeds the number of sites ahead.
//!
//! The crate provides:
//!
//! * [`Pcg32`] — a small, fast, deterministic PRNG (PCG-XSH-RR), so that
//!   every experiment in the repository is reproducible from a seed;
//! * [`Geometric`] — geometrically distributed countdown generation via
//!   inversion of the CDF, as suggested in §2.1 ("geometrically distributed
//!   random numbers can be generated directly using a standard uniform
//!   random generator and some simple floating-point operations");
//! * [`CountdownSource`] — the interface the instrumented runtime uses to
//!   refill its countdown, with geometric, strictly periodic
//!   (Arnold–Ryder-style) and uniform-interval (DCPI-style) implementations,
//!   the latter two serving as baselines for the fairness ablation;
//! * [`CountdownBank`] — a pre-generated bank of countdowns (§3.1.1 uses
//!   banks of 1024), cycling like the real deployment;
//! * [`fairness`] — chi-square and moment checks used to demonstrate that
//!   geometric countdowns realize a fair Bernoulli process while periodic
//!   triggers do not;
//! * [`Categorical`] and [`Zipf`] — seeded discrete distributions used to
//!   model heterogeneous user communities (density mixes, skewed
//!   workload/input popularity) in the fleet simulator.
//!
//! # Example
//!
//! ```
//! use cbi_sampler::{CountdownSource, Geometric, SamplingDensity};
//!
//! let density = SamplingDensity::new(0.01).unwrap(); // sample 1/100 sites
//! let mut src = Geometric::new(density, 42);
//! let cd = src.next_countdown();
//! assert!(cd >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countdown;
pub mod fairness;
pub mod geometric;
pub mod rng;
pub mod zipf;

pub use countdown::{
    Bernoulli, CountdownBank, CountdownSource, LazyBank, Periodic, UniformInterval,
};
pub use geometric::Geometric;
pub use rng::Pcg32;
pub use zipf::{Categorical, CategoricalError, Zipf};

use std::error::Error;
use std::fmt;

/// A sampling density: the probability that any given instrumentation site
/// is sampled when execution crosses it.
///
/// Densities are written `1/d` throughout the paper; this type stores the
/// probability `p = 1/d` and validates `0 < p <= 1`.
///
/// ```
/// use cbi_sampler::SamplingDensity;
/// let d = SamplingDensity::one_in(1000);
/// assert!((d.probability() - 0.001).abs() < 1e-12);
/// assert_eq!(d.mean_countdown(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingDensity(f64);

impl SamplingDensity {
    /// Creates a density from a probability in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError`] if `p` is not a finite number in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, DensityError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(SamplingDensity(p))
        } else {
            Err(DensityError(p))
        }
    }

    /// Creates the density `1/d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn one_in(d: u64) -> Self {
        assert!(d > 0, "sampling density denominator must be nonzero");
        SamplingDensity(1.0 / d as f64)
    }

    /// Density 1: every site is sampled (unconditional instrumentation).
    pub fn always() -> Self {
        SamplingDensity(1.0)
    }

    /// The per-site sampling probability `p`.
    pub fn probability(self) -> f64 {
        self.0
    }

    /// The mean of the matching geometric countdown distribution, `1/p`.
    pub fn mean_countdown(self) -> f64 {
        1.0 / self.0
    }
}

impl fmt::Display for SamplingDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "always")
        } else {
            write!(f, "1/{}", (1.0 / self.0).round() as u64)
        }
    }
}

/// Error returned when constructing a [`SamplingDensity`] from an invalid
/// probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityError(f64);

impl fmt::Display for DensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sampling probability must be a finite number in (0, 1], got {}",
            self.0
        )
    }
}

impl Error for DensityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_accepts_valid_probabilities() {
        assert!(SamplingDensity::new(1.0).is_ok());
        assert!(SamplingDensity::new(0.5).is_ok());
        assert!(SamplingDensity::new(1e-9).is_ok());
    }

    #[test]
    fn density_rejects_invalid_probabilities() {
        assert!(SamplingDensity::new(0.0).is_err());
        assert!(SamplingDensity::new(-0.1).is_err());
        assert!(SamplingDensity::new(1.5).is_err());
        assert!(SamplingDensity::new(f64::NAN).is_err());
        assert!(SamplingDensity::new(f64::INFINITY).is_err());
    }

    #[test]
    fn density_display_matches_paper_notation() {
        assert_eq!(SamplingDensity::one_in(100).to_string(), "1/100");
        assert_eq!(SamplingDensity::one_in(1000).to_string(), "1/1000");
        assert_eq!(SamplingDensity::always().to_string(), "always");
    }

    #[test]
    fn density_error_is_displayable() {
        let err = SamplingDensity::new(0.0).unwrap_err();
        assert!(err.to_string().contains("0"));
    }

    #[test]
    fn mean_countdown_is_inverse_probability() {
        let d = SamplingDensity::one_in(250);
        assert_eq!(d.mean_countdown(), 250.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn one_in_zero_panics() {
        let _ = SamplingDensity::one_in(0);
    }
}
