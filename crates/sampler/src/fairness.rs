//! Statistical fairness checks for sampling strategies.
//!
//! The paper's central statistical claim (§2.1, §4) is that geometric
//! countdowns realize a *fair* Bernoulli process — every site independently
//! has probability `p` of being sampled at every crossing — whereas periodic
//! or uniformly jittered triggers systematically bias which sites are
//! observed.  This module provides the machinery to test that claim: a
//! simulated loop of `k` rotating sites driven by any [`CountdownSource`],
//! per-site hit counts, and a chi-square uniformity statistic.

use crate::countdown::CountdownSource;

/// Per-site sampling counts from a simulated rotation experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteCounts {
    counts: Vec<u64>,
    crossings_per_site: u64,
}

impl SiteCounts {
    /// Number of times each site was sampled.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of times execution crossed each site.
    pub fn crossings_per_site(&self) -> u64 {
        self.crossings_per_site
    }

    /// Total samples taken across all sites.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Empirical per-crossing sampling rate of site `i`.
    pub fn rate(&self, i: usize) -> f64 {
        self.counts[i] as f64 / self.crossings_per_site as f64
    }

    /// Pearson chi-square statistic against the uniform expectation.
    ///
    /// Under fair sampling the statistic is approximately chi-square with
    /// `k - 1` degrees of freedom, where `k` is the number of sites.
    pub fn chi_square(&self) -> f64 {
        let expected = self.total() as f64 / self.counts.len() as f64;
        if expected == 0.0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    /// Ratio of the largest to the smallest per-site count (`inf` if any
    /// site was never sampled).  Fair sampling keeps this near 1.
    pub fn max_min_ratio(&self) -> f64 {
        let max = *self.counts.iter().max().expect("nonempty") as f64;
        let min = *self.counts.iter().min().expect("nonempty") as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Simulates a loop whose body crosses `sites` instrumentation sites in
/// order, for `iterations` iterations, sampling according to `source`.
///
/// This is exactly the scenario of §2.1: "If the above fragment were in a
/// loop … one of the checks would execute on every fiftieth iteration while
/// the other would never execute" (for the periodic strategy).
///
/// # Panics
///
/// Panics if `sites == 0`.
pub fn rotate_sites<S: CountdownSource>(
    source: &mut S,
    sites: usize,
    iterations: u64,
) -> SiteCounts {
    assert!(sites > 0, "need at least one site");
    let mut counts = vec![0u64; sites];
    let mut cd = source.next_countdown();
    for _ in 0..iterations {
        for (i, slot) in counts.iter_mut().enumerate() {
            let _ = i;
            cd -= 1;
            if cd == 0 {
                *slot += 1;
                cd = source.next_countdown();
            }
        }
    }
    SiteCounts {
        counts,
        crossings_per_site: iterations,
    }
}

/// Upper-tail critical value of the chi-square distribution at significance
/// 0.001, via the Wilson–Hilferty approximation.
///
/// Good to a few percent for `df >= 3`, which is ample for pass/fail
/// fairness checks.
pub fn chi_square_critical_001(df: usize) -> f64 {
    // z quantile for 0.999 one-sided.
    let z = 3.0902;
    let df = df as f64;
    let t = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * t * t * t
}

/// Convenience verdict: does the strategy sample a rotating-site loop
/// uniformly at significance 0.001?
pub fn is_fair<S: CountdownSource>(source: &mut S, sites: usize, iterations: u64) -> bool {
    let counts = rotate_sites(source, sites, iterations);
    counts.chi_square() < chi_square_critical_001(sites - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countdown::{Periodic, UniformInterval};
    use crate::geometric::Geometric;
    use crate::SamplingDensity;

    #[test]
    fn geometric_sampling_is_fair_over_rotating_sites() {
        let mut g = Geometric::new(SamplingDensity::one_in(10), 101);
        // 4 sites, enough iterations for ~40k samples.
        let counts = rotate_sites(&mut g, 4, 100_000);
        assert!(counts.total() > 30_000);
        let crit = chi_square_critical_001(3);
        assert!(
            counts.chi_square() < crit,
            "chi2 {} exceeded critical {crit}",
            counts.chi_square()
        );
        assert!(counts.max_min_ratio() < 1.1);
    }

    #[test]
    fn periodic_sampling_starves_sites() {
        // Period 50 over 2 sites: one site gets every sample, the other none.
        let mut p = Periodic::new(50);
        let counts = rotate_sites(&mut p, 2, 100_000);
        // Every 50th crossing is even-numbered, so all samples land on the
        // second site and the first is starved.
        assert_eq!(
            counts.counts()[0],
            0,
            "first site never sampled: {counts:?}"
        );
        assert!(counts.counts()[1] > 0);
        assert!(counts.max_min_ratio().is_infinite());
        assert!(counts.chi_square() > chi_square_critical_001(1));
    }

    #[test]
    fn periodic_sampling_fails_fairness_verdict() {
        let mut p = Periodic::new(10);
        assert!(!is_fair(&mut p, 4, 100_000));
    }

    #[test]
    fn geometric_sampling_passes_fairness_verdict() {
        let mut g = Geometric::new(SamplingDensity::one_in(10), 7);
        assert!(is_fair(&mut g, 4, 100_000));
    }

    #[test]
    fn uniform_interval_is_biased_when_period_resonates() {
        // Intervals 60..=64 over 4 sites: residues mod 4 are not uniform —
        // DCPI-style jitter is not an independent Bernoulli process.  With a
        // rotation of 4 sites and intervals spanning exactly 5 residues the
        // bias is mild, so test the stronger resonant case: interval 8..=8
        // degenerates to periodic.
        let mut u = UniformInterval::new(8, 8, 3);
        let counts = rotate_sites(&mut u, 4, 100_000);
        assert!(
            counts.max_min_ratio() > 2.0 || counts.max_min_ratio().is_infinite(),
            "expected starvation, got {counts:?}"
        );
    }

    #[test]
    fn observed_rate_matches_density() {
        let mut g = Geometric::new(SamplingDensity::one_in(100), 55);
        let counts = rotate_sites(&mut g, 3, 300_000);
        for i in 0..3 {
            let r = counts.rate(i);
            assert!((r - 0.01).abs() < 0.002, "site {i} rate {r}");
        }
    }

    #[test]
    fn chi_square_critical_values_reasonable() {
        // Known value: chi2(0.999, df=10) ≈ 29.59.
        let v = chi_square_critical_001(10);
        assert!((v - 29.59).abs() < 1.0, "got {v}");
        // df=3 ≈ 16.27
        let v3 = chi_square_critical_001(3);
        assert!((v3 - 16.27).abs() < 1.0, "got {v3}");
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let mut p = Periodic::new(5);
        let _ = rotate_sites(&mut p, 0, 10);
    }

    #[test]
    fn single_site_all_samples_land_there() {
        let mut p = Periodic::new(5);
        let counts = rotate_sites(&mut p, 1, 100);
        assert_eq!(counts.total(), 20);
        assert_eq!(counts.crossings_per_site(), 100);
    }
}
