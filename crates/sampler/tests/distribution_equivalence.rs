//! Distributional equivalence between the geometric countdown generator
//! and the naive per-site Bernoulli coin it replaces (§2.1): both must
//! realize the same process, differing only in cost.

use cbi_sampler::{Bernoulli, CountdownSource, Geometric, SamplingDensity};

/// Empirical CDF comparison (two-sample Kolmogorov–Smirnov statistic).
fn ks_statistic(mut a: Vec<u64>, mut b: Vec<u64>) -> f64 {
    a.sort_unstable();
    b.sort_unstable();
    let (n, m) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    // Discrete data is tie-heavy: evaluate the CDF difference only at
    // value boundaries, advancing both samples past each shared value.
    while i < a.len() || j < b.len() {
        let v = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => break,
        };
        while i < a.len() && a[i] == v {
            i += 1;
        }
        while j < b.len() && b[j] == v {
            j += 1;
        }
        let fa = i as f64 / n;
        let fb = j as f64 / m;
        d = d.max((fa - fb).abs());
    }
    d
}

#[test]
fn geometric_and_bernoulli_countdowns_are_the_same_distribution() {
    let density = SamplingDensity::one_in(20);
    let n = 40_000;
    let mut geo = Geometric::new(density, 1);
    let mut coin = Bernoulli::new(density, 2);
    let a: Vec<u64> = (0..n).map(|_| geo.next_countdown()).collect();
    let b: Vec<u64> = (0..n).map(|_| coin.next_countdown()).collect();

    let d = ks_statistic(a, b);
    // KS critical value at alpha = 0.001 for two samples of 40k each:
    // c(α)·sqrt(2/n) ≈ 1.95 · sqrt(2/40000) ≈ 0.0138.
    assert!(d < 0.0138, "KS statistic {d} too large");
}

#[test]
fn geometric_tail_matches_closed_form() {
    // P(N > k) = (1 - p)^k; check a few tail points empirically.
    let p = 0.05;
    let n = 200_000;
    let mut geo = Geometric::new(SamplingDensity::new(p).unwrap(), 9);
    let draws: Vec<u64> = (0..n).map(|_| geo.next_countdown()).collect();
    for k in [1u64, 5, 20, 60] {
        let empirical = draws.iter().filter(|&&x| x > k).count() as f64 / n as f64;
        let exact = (1.0 - p).powi(k as i32);
        assert!(
            (empirical - exact).abs() < 0.005,
            "tail at {k}: empirical {empirical} vs exact {exact}"
        );
    }
}

#[test]
fn bank_draws_match_generator_draws() {
    use cbi_sampler::CountdownBank;
    // A bank generated from the same seed must replay the generator's
    // sequence until it cycles.
    let density = SamplingDensity::one_in(50);
    let mut gen = Geometric::new(density, 31);
    let mut bank = CountdownBank::generate(density, 256, 31);
    for i in 0..256 {
        assert_eq!(bank.next_countdown(), gen.next_countdown(), "draw {i}");
    }
}
