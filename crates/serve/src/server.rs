//! The TCP front end: thread-per-core accept loop feeding the shard
//! workers over bounded queues.
//!
//! Topology: `acceptors` threads block in `accept` on clones of one
//! listener (claim-then-accept, so exactly `max_clients` connections
//! are served in total, after which the server drains and shuts down).
//! Each connection is handled on its acceptor thread: envelopes are
//! read, routed to `client mod shards` over a bounded
//! `sync_channel`, and acked in order once the owning shard worker has
//! processed them.  A full shard queue surfaces as the typed
//! [`ServeError::Backpressure`], answered on the wire with an
//! `overloaded` NACK — the queue bound is the only buffer.
//!
//! Two protocols share the port, discriminated by the first byte:
//! `'B'` opens an envelope session (ack per batch), `'C'` — the first
//! byte of the `CBIR` magic — a legacy raw stream (`cbi transmit`),
//! which is drained to EOF and committed as one synthetic envelope.
//!
//! Telemetry lanes: shard worker `i` records under worker label `i +
//! 1`; acceptor `a` under `shards + 1 + a`.  Queue-depth high-water
//! marks are tracked per shard and surface in the summary and the
//! `serve.queue_depth` histogram.

use crate::core::{finish_parts, IngestCore, ServeOutcome};
use crate::shard::ShardState;
use crate::ServeError;
use cbi_reports::frame::{read_envelope, read_envelope_body, BatchAck, ENVELOPE_TAG};
use cbi_reports::{AckVerdict, BatchEnvelope, WireError};
use cbi_telemetry as telemetry;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread;

/// TCP front-end options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Accept threads; 0 means one per available core, capped at 16.
    pub acceptors: usize,
    /// Connections to serve before draining and shutting down.
    pub max_clients: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            acceptors: 0,
            max_clients: 1,
        }
    }
}

impl ServerOptions {
    fn resolved_acceptors(&self) -> usize {
        if self.acceptors > 0 {
            return self.acceptors;
        }
        thread::available_parallelism()
            .map(|n| n.get().min(16))
            .unwrap_or(4)
    }
}

/// One queued delivery awaiting its shard worker.
struct Delivery {
    envelope: BatchEnvelope,
    crc_ok: bool,
    origin: Option<String>,
    enqueued_ns: u64,
    reply: mpsc::Sender<Result<AckVerdict, ServeError>>,
}

/// Shard queue messages: deliveries, then one shutdown sentinel.
enum ShardMsg {
    Batch(Box<Delivery>),
    Shutdown,
}

/// Counters the connection handlers share.
#[derive(Default)]
struct ServerCounters {
    connections: AtomicU64,
    legacy_connections: AtomicU64,
    rejected_connections: AtomicU64,
    legacy_seq: AtomicU64,
    shed: Vec<AtomicU64>,
    queue_depth: Vec<AtomicUsize>,
    queue_high_water: Vec<AtomicU64>,
}

/// Routing handles the connection handlers use to reach the shards.
struct ShardRouter {
    senders: Vec<SyncSender<ShardMsg>>,
    queue_cap: usize,
    counters: ServerCounters,
}

impl ShardRouter {
    /// Queues one delivery on its shard, enforcing the bound.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backpressure`] when the shard queue is
    /// full; the delivery is shed, not buffered.
    fn try_submit(
        &self,
        envelope: BatchEnvelope,
        crc_ok: bool,
        origin: Option<String>,
    ) -> Result<Receiver<Result<AckVerdict, ServeError>>, ServeError> {
        let shard = (envelope.client % self.senders.len() as u64) as usize;
        let (reply_tx, reply_rx) = mpsc::channel();
        let msg = ShardMsg::Batch(Box::new(Delivery {
            envelope,
            crc_ok,
            origin,
            enqueued_ns: telemetry::now_ns(),
            reply: reply_tx,
        }));
        let depth = self.counters.queue_depth[shard].fetch_add(1, Ordering::AcqRel) + 1;
        match self.senders[shard].try_send(msg) {
            Ok(()) => {
                self.counters.queue_high_water[shard].fetch_max(depth as u64, Ordering::AcqRel);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.counters.queue_depth[shard].fetch_sub(1, Ordering::AcqRel);
                self.counters.shed[shard].fetch_add(1, Ordering::AcqRel);
                telemetry::count("serve.shed", 1);
                Err(ServeError::Backpressure {
                    shard,
                    capacity: self.queue_cap,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.counters.queue_depth[shard].fetch_sub(1, Ordering::AcqRel);
                Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "shard worker exited",
                )))
            }
        }
    }
}

/// The TCP ingest server: an [`IngestCore`] behind a listener.
pub struct TcpIngestServer {
    core: IngestCore,
    listener: TcpListener,
    options: ServerOptions,
}

impl TcpIngestServer {
    /// Binds a listener for the core.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the address cannot be bound.
    pub fn bind(
        core: IngestCore,
        addr: &str,
        options: ServerOptions,
    ) -> Result<TcpIngestServer, ServeError> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpIngestServer {
            core,
            listener,
            options,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Returns the listener's I/O error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves exactly `max_clients` connections, then drains the
    /// shards, folds, and returns the outcome.
    ///
    /// # Errors
    ///
    /// Propagates journal and fold errors; per-connection failures are
    /// counted in the summary instead.
    pub fn run(self) -> Result<ServeOutcome, ServeError> {
        let TcpIngestServer {
            core,
            listener,
            options,
        } = self;
        let (config, sites, layout, shards, journal, replay) = core.into_parts();
        let n_shards = config.shards;
        let queue_cap = config.queue_cap;

        let mut counters = ServerCounters::default();
        for _ in 0..n_shards {
            counters.shed.push(AtomicU64::new(0));
            counters.queue_depth.push(AtomicUsize::new(0));
            counters.queue_high_water.push(AtomicU64::new(0));
        }

        let mut senders = Vec::with_capacity(n_shards);
        let mut receivers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = mpsc::sync_channel::<ShardMsg>(queue_cap);
            senders.push(tx);
            receivers.push(rx);
        }
        let router = ShardRouter {
            senders,
            queue_cap,
            counters,
        };
        let journal_error: Mutex<Option<ServeError>> = Mutex::new(None);
        let claimed = AtomicU64::new(0);
        let acceptors = options.resolved_acceptors();
        let listeners = (0..acceptors)
            .map(|_| listener.try_clone())
            .collect::<io::Result<Vec<_>>>()?;

        let shards = thread::scope(|scope| -> Vec<ShardState> {
            let router = &router;
            let journal = &journal;
            let journal_error = &journal_error;
            let claimed = &claimed;
            let options = &options;

            let mut workers = Vec::with_capacity(n_shards);
            for (index, (mut state, rx)) in shards.into_iter().zip(receivers).enumerate() {
                workers.push(scope.spawn(move || {
                    telemetry::set_worker(index as u32 + 1);
                    while let Ok(msg) = rx.recv() {
                        let delivery = match msg {
                            ShardMsg::Shutdown => break,
                            ShardMsg::Batch(delivery) => delivery,
                        };
                        router.counters.queue_depth[index].fetch_sub(1, Ordering::AcqRel);
                        let verdict = state.process(
                            delivery.origin.as_deref(),
                            delivery.envelope,
                            delivery.crc_ok,
                            journal.as_ref(),
                        );
                        telemetry::record(
                            "serve.ingest_us",
                            telemetry::now_ns().saturating_sub(delivery.enqueued_ns) / 1_000,
                        );
                        telemetry::count("serve.batches_processed", 1);
                        if let Err(err) = &verdict {
                            let mut slot = journal_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if slot.is_none() {
                                *slot = Some(ServeError::Config(err.to_string()));
                            }
                        }
                        let _ = delivery.reply.send(verdict);
                    }
                    state
                }));
            }

            let mut accept_threads = Vec::with_capacity(acceptors);
            for (a, listener) in listeners.into_iter().enumerate() {
                accept_threads.push(scope.spawn(move || {
                    telemetry::set_worker((n_shards + 1 + a) as u32);
                    loop {
                        if claimed.fetch_add(1, Ordering::AcqRel) >= options.max_clients {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, peer)) => handle_connection(router, stream, peer),
                            Err(_) => {
                                router
                                    .counters
                                    .rejected_connections
                                    .fetch_add(1, Ordering::AcqRel);
                                break;
                            }
                        }
                    }
                }));
            }
            for t in accept_threads {
                let _ = t.join();
            }
            // All connections served: a sentinel per shard lets each
            // worker drain its queue and exit.
            for sender in &router.senders {
                let _ = sender.send(ShardMsg::Shutdown);
            }
            let mut out = Vec::with_capacity(n_shards);
            for w in workers {
                out.push(w.join().expect("shard worker panicked"));
            }
            out
        });

        if let Some(err) = journal_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            return Err(err);
        }

        let mut outcome = finish_parts(config, sites, layout, shards, journal, replay)?;
        let c = &router.counters;
        outcome.summary.connections = c.connections.load(Ordering::Acquire);
        outcome.summary.legacy_connections = c.legacy_connections.load(Ordering::Acquire);
        outcome.summary.rejected_connections = c.rejected_connections.load(Ordering::Acquire);
        outcome.summary.shed = c.shed.iter().map(|s| s.load(Ordering::Acquire)).sum();
        outcome.summary.queue_high_water = c
            .queue_high_water
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .collect();
        Ok(outcome)
    }
}

/// Serves one connection to completion, counting its fate.
fn handle_connection(router: &ShardRouter, stream: TcpStream, peer: SocketAddr) {
    let _span = telemetry::span("serve.connection");
    let origin = peer.ip().to_string();
    match serve_connection(router, stream, &origin) {
        Ok(ConnectionKind::Envelope) => {
            router.counters.connections.fetch_add(1, Ordering::AcqRel);
        }
        Ok(ConnectionKind::Legacy) => {
            router.counters.connections.fetch_add(1, Ordering::AcqRel);
            router
                .counters
                .legacy_connections
                .fetch_add(1, Ordering::AcqRel);
        }
        Err(_) => {
            router
                .counters
                .rejected_connections
                .fetch_add(1, Ordering::AcqRel);
            telemetry::count("serve.rejected_connections", 1);
        }
    }
}

enum ConnectionKind {
    Envelope,
    Legacy,
}

fn serve_connection(
    router: &ShardRouter,
    stream: TcpStream,
    origin: &str,
) -> Result<ConnectionKind, ServeError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => return Ok(ConnectionKind::Envelope), // empty connection
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServeError::Io(e)),
        }
    }

    if first[0] == ENVELOPE_TAG {
        let read = read_envelope_body(&mut reader)?;
        answer(router, &mut writer, read.envelope, read.crc_ok, origin)?;
        while let Some(read) = read_envelope(&mut reader)? {
            answer(router, &mut writer, read.envelope, read.crc_ok, origin)?;
        }
        Ok(ConnectionKind::Envelope)
    } else {
        // Legacy raw CBIR stream: drain to EOF, commit as one
        // synthetic envelope.  No acks — legacy senders don't read.
        let mut payload = vec![first[0]];
        reader.read_to_end(&mut payload)?;
        let n = router.counters.legacy_seq.fetch_add(1, Ordering::AcqRel);
        let envelope = crate::legacy_envelope(n, payload);
        match router.try_submit(envelope, true, Some(origin.to_string())) {
            Ok(reply) => {
                let verdict = reply
                    .recv()
                    .map_err(|_| ServeError::Io(io::ErrorKind::BrokenPipe.into()))??;
                match verdict {
                    AckVerdict::Accepted | AckVerdict::Duplicate => Ok(ConnectionKind::Legacy),
                    // A rejected legacy stream (stale layout, torn
                    // frame) is a rejected connection, mirroring the
                    // loopback server's accounting.
                    _ => Err(ServeError::Wire(WireError::Truncated(
                        "legacy stream rejected",
                    ))),
                }
            }
            Err(err) => Err(err),
        }
    }
}

/// Routes one envelope and writes its ack (NACKing overload inline).
fn answer<W: Write>(
    router: &ShardRouter,
    writer: &mut W,
    envelope: BatchEnvelope,
    crc_ok: bool,
    origin: &str,
) -> Result<(), ServeError> {
    let (client, seq) = (envelope.client, envelope.seq);
    let verdict = match router.try_submit(envelope, crc_ok, Some(origin.to_string())) {
        Ok(reply) => reply
            .recv()
            .map_err(|_| ServeError::Io(io::ErrorKind::BrokenPipe.into()))??,
        Err(ServeError::Backpressure { .. }) => AckVerdict::Overloaded,
        Err(other) => return Err(other),
    };
    let ack = BatchAck {
        client,
        seq,
        verdict,
    };
    writer.write_all(&ack.encode())?;
    writer.flush()?;
    Ok(())
}
