//! [`IngestCore`]: the transport-free ingest engine.
//!
//! Everything the TCP server does between the socket and the analysis
//! lives here, so tests and in-process baselines can drive the exact
//! production path without a network: shard routing, dedup, journal
//! append-before-ack, resume, and the shutdown fold.

use crate::journal::{self, FsyncPolicy, Journal};
use crate::shard::{fold_ordered, CommittedBatch, RejectEvent, ShardState, ShardStats};
use crate::ServeError;
use cbi::{EpochAggregator, StreamingConfig};
use cbi_instrument::SiteTable;
use cbi_reports::{AckVerdict, BatchEnvelope, Collector, ReportLayout};
use std::path::PathBuf;
use std::sync::Mutex;

/// Ingest-core configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; batches route to `client mod shards`.
    pub shards: usize,
    /// Bound of each shard's ingest queue (threaded server only; a
    /// full queue sheds with an `overloaded` NACK).
    pub queue_cap: usize,
    /// Runs per epoch snapshot in the folded analysis.
    pub epoch_len: u64,
    /// Streaming-analyzer hyperparameters.
    pub streaming: StreamingConfig,
    /// Flight-recorder capacity of the folded aggregator.
    pub flight_capacity: usize,
    /// Ground-truth counter whose latency/rank snapshots report.
    pub target_counter: Option<usize>,
    /// Also archive every accepted report in a [`Collector`] during
    /// the fold (the regression analysis needs the full archive).
    pub keep_reports: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            queue_cap: 64,
            epoch_len: 256,
            streaming: StreamingConfig::default(),
            flight_capacity: 64,
            target_counter: None,
            keep_reports: false,
        }
    }
}

/// What the server ingested, shard by shard.  Everything here is
/// integer-valued and — except the per-shard and arrival-order columns
/// — invariant under shard count and crash/replay history.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Worker shards.
    pub shards: usize,
    /// Connections fully drained.
    pub connections: u64,
    /// Among them, legacy raw `CBIR` connections.
    pub legacy_connections: u64,
    /// Connections dropped mid-stream (I/O error or unrecoverable
    /// framing) — counted separately, never folded.
    pub rejected_connections: u64,
    /// Batches committed.
    pub batches: u64,
    /// Retransmits deduplicated.
    pub duplicates: u64,
    /// Deliveries rejected at decode.
    pub rejected_batches: u64,
    /// Deliveries failing their envelope CRC.
    pub crc_failures: u64,
    /// Batches shed by backpressure.
    pub shed: u64,
    /// Reports committed.
    pub reports: u64,
    /// Payload bytes committed.
    pub bytes: u64,
    /// Batches replayed from the journal at resume.
    pub replayed: u64,
    /// Whether resume truncated a torn final record.
    pub torn_tail: bool,
    /// Journal records skipped for CRC damage at resume.
    pub journal_skipped_crc: u64,
    /// Journal size in bytes at shutdown (0 without a journal).
    pub journal_bytes: u64,
    /// Per-shard committed-batch counts.
    pub shard_batches: Vec<u64>,
    /// Per-shard ingest-queue high-water marks (threaded server only).
    pub queue_high_water: Vec<u64>,
}

impl ServeSummary {
    /// Renders the summary, integers only.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ingested {} reports in {} batches over {} connections ({} legacy, {} rejected)\n",
            self.reports,
            self.batches,
            self.connections,
            self.legacy_connections,
            self.rejected_connections
        ));
        out.push_str(&format!(
            "deliveries: {} duplicate, {} rejected, {} bad-crc, {} shed\n",
            self.duplicates, self.rejected_batches, self.crc_failures, self.shed
        ));
        out.push_str(&format!("payload bytes: {}\n", self.bytes));
        if self.journal_bytes > 0 || self.replayed > 0 {
            out.push_str(&format!(
                "journal: {} bytes, {} replayed{}{}\n",
                self.journal_bytes,
                self.replayed,
                if self.torn_tail {
                    ", torn tail truncated"
                } else {
                    ""
                },
                if self.journal_skipped_crc > 0 {
                    ", crc-damaged records skipped"
                } else {
                    ""
                },
            ));
        }
        out.push_str(&format!("shards: {}\n", self.shards));
        for (i, batches) in self.shard_batches.iter().enumerate() {
            let high = self.queue_high_water.get(i).copied().unwrap_or(0);
            out.push_str(&format!(
                "  shard {i}: {batches} batches, queue high-water {high}\n"
            ));
        }
        out
    }

    fn absorb_shard(&mut self, stats: &ShardStats) {
        self.batches += stats.batches;
        self.duplicates += stats.duplicates;
        self.rejected_batches += stats.rejected;
        self.crc_failures += stats.crc_failures;
        self.reports += stats.reports;
        self.bytes += stats.bytes;
        self.shard_batches.push(stats.batches);
    }
}

/// The server's full result: accounting plus the folded analysis.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Ingest accounting.
    pub summary: ServeSummary,
    /// The authoritative folded analysis.
    pub aggregator: EpochAggregator,
    /// Full report archive, when [`ServeConfig::keep_reports`] was set.
    pub collector: Option<Collector>,
}

/// Renders the canonical analysis of a folded aggregator: integers and
/// predicate names only, so the rendering is byte-comparable across
/// shard counts, transports, and crash/replay histories.
///
/// Deliberately excluded: anything the server cannot observe or that
/// is transport-specific — corruption flags (a client-side fact),
/// cohort labels (peer-address-derived), retry/byte columns.
pub fn render_analysis(aggregator: &EpochAggregator, top: usize) -> String {
    let sites = aggregator.sites();
    let analyzer = aggregator.analyzer();
    let elimination = analyzer.eliminate(sites);
    let mut out = String::new();
    out.push_str(&format!("runs: {}\n", aggregator.runs()));
    out.push_str(&format!("failures: {}\n", aggregator.failures()));
    out.push_str(&format!(
        "observed: {}\n",
        aggregator.first_observation().observed_count()
    ));
    out.push_str(&format!("survivors: {}\n", elimination.combined.len()));
    for name in &elimination.combined_names {
        out.push_str(&format!("  {name}\n"));
    }
    out.push_str(&format!("top {top} predicates:\n"));
    for (i, (name, _weight)) in analyzer.top_named(sites, top).iter().enumerate() {
        out.push_str(&format!("  {:>2}. {name}\n", i + 1));
    }
    out.push_str("epoch  runs  failures  observed  survivors\n");
    for snap in aggregator.snapshots() {
        out.push_str(&format!(
            "{:>5}  {:>4}  {:>8}  {:>8}  {:>9}\n",
            snap.epoch, snap.runs, snap.failures, snap.observed, snap.survivors
        ));
    }
    out
}

/// Journal attachment state carried from setup through shutdown.
#[derive(Default)]
pub(crate) struct ReplayInfo {
    pub replayed: u64,
    pub torn_tail: bool,
    pub skipped_crc: u64,
}

/// The transport-free ingest engine: shard routing, dedup, journal,
/// resume, and the shutdown fold, with no sockets attached.
pub struct IngestCore {
    config: ServeConfig,
    sites: SiteTable,
    layout: ReportLayout,
    shards: Vec<ShardState>,
    journal: Option<Mutex<Journal>>,
    replay: ReplayInfo,
}

impl IngestCore {
    /// Builds a core serving the given instrumented site table.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] on zero shards or a zero queue
    /// bound.
    pub fn new(sites: SiteTable, config: ServeConfig) -> Result<IngestCore, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::Config("shard count must be positive".into()));
        }
        if config.queue_cap == 0 {
            return Err(ServeError::Config(
                "ingest queue capacity must be positive".into(),
            ));
        }
        if config.epoch_len == 0 {
            return Err(ServeError::Config("epoch length must be positive".into()));
        }
        let layout = ReportLayout {
            counters: sites.total_counters(),
            layout_hash: sites.layout_hash(),
        };
        let shards = (0..config.shards)
            .map(|i| ShardState::new(i, layout, config.streaming, true))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IngestCore {
            config,
            sites,
            layout,
            shards,
            journal: None,
            replay: ReplayInfo::default(),
        })
    }

    /// Attaches a fresh journal (truncating any existing file).  From
    /// here on, committed payloads live in the journal, not in memory,
    /// and every commit is appended before it is acked.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Journal`] if the file cannot be created.
    pub fn with_journal(
        mut self,
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<IngestCore, ServeError> {
        let journal = Journal::create(path, self.layout.layout_hash, policy)?;
        self.attach(journal);
        Ok(self)
    }

    /// Resumes from an existing journal: replays every intact record
    /// through the shards (rebuilding dedup and live-analyzer state),
    /// truncates any torn tail, and continues appending.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] on a layout-hash mismatch, plus
    /// journal I/O and replay decode errors.
    pub fn resume(
        mut self,
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<IngestCore, ServeError> {
        let (journal, recovered) = journal::resume(path, self.layout.layout_hash, policy)?;
        self.replay = ReplayInfo {
            replayed: recovered.envelopes.len() as u64,
            torn_tail: recovered.torn_tail,
            skipped_crc: recovered.skipped_crc,
        };
        self.attach(journal);
        for envelope in recovered.envelopes {
            let shard = self.shard_of(envelope.client);
            self.shards[shard].replay(envelope)?;
        }
        Ok(self)
    }

    /// Replays a journal file *read-only*: intact records are ingested
    /// into memory (full provenance preserved) but the file is never
    /// opened for append and a torn tail is never truncated.  This is
    /// the offline-analysis path (`cbi monitor --replay`), safe to run
    /// on crash debris while deciding whether to resume.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] on a layout-hash mismatch, plus
    /// journal read errors.
    pub fn load_journal(
        mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<IngestCore, ServeError> {
        let recovered = journal::replay(path)?;
        if recovered.layout_hash != self.layout.layout_hash {
            return Err(ServeError::Config(format!(
                "journal layout hash {:#018x} does not match the served binary's {:#018x}",
                recovered.layout_hash, self.layout.layout_hash
            )));
        }
        self.replay = ReplayInfo {
            replayed: recovered.envelopes.len() as u64,
            torn_tail: recovered.torn_tail,
            skipped_crc: recovered.skipped_crc,
        };
        for envelope in recovered.envelopes {
            let shard = self.shard_of(envelope.client);
            // Full `process` (not the resume-replay fast path) so the
            // in-memory shards retain the payloads for the fold.
            self.shards[shard].process(None, envelope, true, None)?;
        }
        Ok(self)
    }

    fn attach(&mut self, journal: Journal) {
        self.journal = Some(Mutex::new(journal));
        for shard in &mut self.shards {
            *shard = ShardState::new(shard.index, self.layout, self.config.streaming, false)
                .expect("layout already validated");
        }
    }

    /// The layout this core serves.
    pub fn layout(&self) -> ReportLayout {
        self.layout
    }

    /// The site table this core serves.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Which shard owns a client.
    pub fn shard_of(&self, client: u64) -> usize {
        (client % self.config.shards as u64) as usize
    }

    /// Processes one envelope sequentially (the in-process baseline
    /// path; the TCP server routes through shard worker threads
    /// instead).
    ///
    /// # Errors
    ///
    /// As [`ShardState::process`].
    pub fn submit(
        &mut self,
        origin: Option<&str>,
        envelope: BatchEnvelope,
        crc_ok: bool,
    ) -> Result<AckVerdict, ServeError> {
        let shard = self.shard_of(envelope.client);
        self.shards[shard].process(origin, envelope, crc_ok, self.journal.as_ref())
    }

    /// Shuts down and produces the authoritative analysis via the
    /// ordered fold.
    ///
    /// # Errors
    ///
    /// Propagates journal read and fold errors.
    pub fn finish(self) -> Result<ServeOutcome, ServeError> {
        let (config, sites, layout, shards, journal, replay) = self.into_parts();
        finish_parts(config, sites, layout, shards, journal, replay)
    }

    pub(crate) fn into_parts(
        self,
    ) -> (
        ServeConfig,
        SiteTable,
        ReportLayout,
        Vec<ShardState>,
        Option<Mutex<Journal>>,
        ReplayInfo,
    ) {
        (
            self.config,
            self.sites,
            self.layout,
            self.shards,
            self.journal,
            self.replay,
        )
    }
}

/// The shared shutdown path: collect committed batches (from memory or
/// by re-reading the journal), fold them in order, assemble the
/// summary.
pub(crate) fn finish_parts(
    config: ServeConfig,
    sites: SiteTable,
    layout: ReportLayout,
    shards: Vec<ShardState>,
    journal: Option<Mutex<Journal>>,
    replay: ReplayInfo,
) -> Result<ServeOutcome, ServeError> {
    let mut summary = ServeSummary {
        shards: config.shards,
        replayed: replay.replayed,
        torn_tail: replay.torn_tail,
        journal_skipped_crc: replay.skipped_crc,
        ..ServeSummary::default()
    };
    let mut committed: Vec<CommittedBatch> = Vec::new();
    let mut rejects: Vec<RejectEvent> = Vec::new();
    for shard in &shards {
        summary.absorb_shard(&shard.stats);
        cbi_telemetry::record("serve.shard_resident_high_water", shard.high_water() as u64);
    }
    for shard in shards {
        committed.extend(shard.committed);
        rejects.extend(shard.rejects);
    }
    if let Some(journal) = journal {
        let mut journal = journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        journal.sync()?;
        summary.journal_bytes = journal.bytes();
        let path = journal.path().to_path_buf();
        drop(journal);
        let recovered = journal::replay(&path)?;
        committed = recovered
            .envelopes
            .into_iter()
            .map(|envelope| CommittedBatch {
                client: envelope.client,
                seq: envelope.seq,
                attempt: envelope.attempt,
                origin: None,
                payload: envelope.payload,
            })
            .collect();
    }
    let mut collector = config.keep_reports.then(|| Collector::new(layout.counters));
    let aggregator = fold_ordered(
        &sites,
        layout,
        config.epoch_len,
        config.streaming,
        config.flight_capacity,
        config.target_counter,
        committed,
        rejects,
        collector.as_mut(),
    )?;
    Ok(ServeOutcome {
        summary,
        aggregator,
        collector,
    })
}
