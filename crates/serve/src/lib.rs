//! Production network ingest: the "central server" of §1's feedback
//! loop at deployment scale.
//!
//! The loopback [`cbi::IngestServer`] drains one connection at a time
//! into one analyzer and forgets everything on a crash.  This crate is
//! the production replacement, built only on `std::net`:
//!
//! * **Sharded ingest, one analysis.**  Batches route to `client mod
//!   shards` worker shards, each owning a live
//!   [`StreamingAnalyzer`](cbi::StreamingAnalyzer) over its arrival
//!   order.  The *authoritative* analysis is produced at shutdown (or
//!   resume) by the same ordered-merge discipline the campaign driver
//!   and fleet use: every committed batch is refolded in `(seq,
//!   client)` order into a fresh [`EpochAggregator`](cbi::EpochAggregator),
//!   so the result is byte-identical at any shard count — and identical
//!   to feeding the same batches through an in-process aggregator.
//! * **Backpressure, never an unbounded buffer.**  Each shard has a
//!   bounded queue; a full queue surfaces as the typed
//!   [`ServeError::Backpressure`], which the connection handler answers
//!   with an `overloaded` NACK so the client retransmits after backoff.
//! * **Idempotent acks.**  Batches arrive in [`BatchEnvelope`] frames
//!   keyed by `(client, seq)` (see `cbi_reports::frame`).  A client
//!   that never saw its ack retransmits; the server answers
//!   `duplicate` without re-ingesting, so retry loops converge on
//!   exactly-once commit semantics.
//! * **Crash-safe journal.**  With a [`Journal`] attached, every batch
//!   is appended (length-prefixed, CRC-framed, fsync per policy)
//!   *before* it is acked.  Restarting with [`IngestCore::resume`]
//!   replays the journal — truncating a torn final record — and
//!   reconstructs dedup and analyzer state exactly, so an interrupted
//!   campaign plus a client retransmit sweep ends in the same analysis
//!   as an uninterrupted one.
//!
//! [`IngestCore`] is the transport-free heart (usable in tests and as
//! an in-process baseline); [`TcpIngestServer`] wraps it in a
//! thread-per-core accept loop speaking both the envelope protocol and
//! the legacy raw `CBIR` stream (`cbi transmit`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod journal;
pub mod server;
mod shard;

pub use crate::core::{render_analysis, IngestCore, ServeConfig, ServeOutcome, ServeSummary};
pub use journal::{FsyncPolicy, Journal, JournalReplay};
pub use server::{ServerOptions, TcpIngestServer};

use cbi_reports::{BatchEnvelope, SinkError, WireError};
use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Error from the ingest server, its core, or its journal.
#[derive(Debug)]
pub enum ServeError {
    /// Listener or connection I/O failed.
    Io(io::Error),
    /// A stream or envelope was malformed beyond recovery.
    Wire(WireError),
    /// An analysis sink rejected a report.
    Sink(SinkError),
    /// The journal could not be written, read, or resumed.
    Journal {
        /// Journal file path.
        path: PathBuf,
        /// Underlying I/O failure.
        source: io::Error,
    },
    /// A shard's bounded ingest queue was full; the batch was shed and
    /// the client NACKed to retransmit after backoff.
    Backpressure {
        /// The overloaded shard.
        shard: usize,
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// Invalid configuration (zero shards, malformed fsync policy, a
    /// journal whose layout hash does not match the served binary, …).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "serve stream error: {e}"),
            ServeError::Sink(e) => write!(f, "serve sink error: {e}"),
            ServeError::Journal { path, source } => {
                write!(f, "journal error on {}: {source}", path.display())
            }
            ServeError::Backpressure { shard, capacity } => write!(
                f,
                "shard {shard} ingest queue full (capacity {capacity}); batch shed"
            ),
            ServeError::Config(msg) => write!(f, "serve configuration error: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Sink(e) => Some(e),
            ServeError::Journal { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<SinkError> for ServeError {
    fn from(e: SinkError) -> Self {
        ServeError::Sink(e)
    }
}

/// Synthetic client-id base for legacy raw `CBIR` connections, which
/// carry no client identity of their own.  High enough to never collide
/// with fleet client ids.
pub const LEGACY_CLIENT_BASE: u64 = 1 << 62;

/// Builds the synthetic envelope a legacy raw-stream connection commits
/// as: the `n`-th legacy connection becomes client `LEGACY_CLIENT_BASE
/// + n`, sequence `n`, attempt 0.
pub fn legacy_envelope(n: u64, payload: Vec<u8>) -> BatchEnvelope {
    BatchEnvelope::new(LEGACY_CLIENT_BASE + n, n, 0, payload)
}
