//! Crash-safe batch journal: an append-only spool of committed
//! envelopes.
//!
//! ```text
//! file   := magic "CBIJ" | version u8 | layout_hash u64 LE | record*
//! record := envelope                      (see cbi_reports::frame)
//! ```
//!
//! Records reuse the wire envelope codec verbatim — tag byte, varint
//! identity, length prefix, payload CRC — so the replayer and the
//! network decoder are the same code, and `cbi monitor --replay` can
//! walk a journal with full per-batch provenance.
//!
//! The append path writes a whole encoded record with one `write_all`
//! and fsyncs per [`FsyncPolicy`] *before* the server acks the batch:
//! an acked batch is on disk.  A crash can therefore lose only
//! unacked work, in one of two shapes the replayer handles:
//!
//! * a **torn tail** — the final record was cut mid-write.  Replay
//!   stops at the last intact record and [`resume`] truncates the file
//!   there; the client, never having been acked, retransmits.
//! * a **CRC-failed record** — framing intact, payload damaged (disk
//!   corruption).  The record is skipped and counted; replay continues
//!   behind it.

use crate::ServeError;
use cbi_reports::frame::{take_envelope, BatchEnvelope};
use cbi_reports::{WireError, WireErrorKind};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal file magic.
pub const JOURNAL_MAGIC: [u8; 4] = *b"CBIJ";

/// Current journal format version.
pub const JOURNAL_VERSION: u8 = 1;

/// Journal header length: magic, version, layout hash.
pub const JOURNAL_HEADER_LEN: u64 = 4 + 1 + 8;

/// When the journal flushes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync explicitly; the OS flushes on its own schedule.
    /// Fastest, weakest: a machine crash can lose acked batches (a
    /// process crash cannot — writes are in the page cache).
    Never,
    /// Fsync after every appended batch.  An acked batch survives even
    /// power loss.
    EveryBatch,
    /// Fsync after every `n` appended batches.
    EveryN(u64),
}

impl FsyncPolicy {
    /// Parses `never`, `batch`, or `every:N`.
    ///
    /// # Errors
    ///
    /// Returns a description of the expected forms.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "never" => Ok(FsyncPolicy::Never),
            "batch" => Ok(FsyncPolicy::EveryBatch),
            _ => match s.strip_prefix("every:").and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "bad fsync policy {s:?} (expected never, batch, or every:N)"
                )),
            },
        }
    }
}

/// An open, append-only journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    records: u64,
    bytes: u64,
    unsynced: u64,
    buf: Vec<u8>,
}

impl Journal {
    /// Creates (or truncates) a journal for the given layout.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Journal`] if the file cannot be created or
    /// the header written.
    pub fn create(
        path: impl Into<PathBuf>,
        layout_hash: u64,
        policy: FsyncPolicy,
    ) -> Result<Journal, ServeError> {
        let path = path.into();
        let journal_err = |source| ServeError::Journal {
            path: path.clone(),
            source,
        };
        let mut file = File::create(&path).map_err(journal_err)?;
        let mut head = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
        head.extend_from_slice(&JOURNAL_MAGIC);
        head.push(JOURNAL_VERSION);
        head.extend_from_slice(&layout_hash.to_le_bytes());
        file.write_all(&head).map_err(journal_err)?;
        file.sync_all().map_err(journal_err)?;
        Ok(Journal {
            file,
            path,
            policy,
            records: 0,
            bytes: JOURNAL_HEADER_LEN,
            unsynced: 0,
            buf: Vec::with_capacity(256),
        })
    }

    /// Appends one committed envelope and applies the fsync policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Journal`] on any write or sync failure —
    /// the caller must *not* ack the batch.
    pub fn append(&mut self, envelope: &BatchEnvelope) -> Result<(), ServeError> {
        self.buf.clear();
        envelope.encode_into(&mut self.buf);
        self.file
            .write_all(&self.buf)
            .map_err(|source| ServeError::Journal {
                path: self.path.clone(),
                source,
            })?;
        self.records += 1;
        self.bytes += self.buf.len() as u64;
        self.unsynced += 1;
        let due = match self.policy {
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryBatch => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
        };
        if due {
            self.sync()?;
        }
        cbi_telemetry::count("journal.appends", 1);
        cbi_telemetry::count("journal.bytes", self.buf.len() as u64);
        Ok(())
    }

    /// Forces buffered appends to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Journal`] on sync failure.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.file.sync_all().map_err(|source| ServeError::Journal {
            path: self.path.clone(),
            source,
        })?;
        self.unsynced = 0;
        cbi_telemetry::count("journal.syncs", 1);
        Ok(())
    }

    /// Records appended through this handle (excludes replayed ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current journal length in bytes, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything replay recovered from a journal file.
#[derive(Debug)]
pub struct JournalReplay {
    /// Layout hash from the journal header.
    pub layout_hash: u64,
    /// Intact records in file (append) order.
    pub envelopes: Vec<BatchEnvelope>,
    /// Whether the file ended in a torn (partially written) record.
    pub torn_tail: bool,
    /// Records whose framing held but whose payload failed its CRC.
    pub skipped_crc: u64,
    /// Byte offset of the end of the last intact record — the truncate
    /// point for [`resume`].
    pub good_bytes: u64,
}

/// Reads a journal file, recovering every intact record.
///
/// # Errors
///
/// Returns [`ServeError::Journal`] if the file cannot be read and
/// [`ServeError::Wire`] if the *header* is malformed (a damaged header
/// means the file is not a journal; a damaged record tail is normal
/// crash debris and reported via [`JournalReplay::torn_tail`]).
pub fn replay(path: impl AsRef<Path>) -> Result<JournalReplay, ServeError> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|source| ServeError::Journal {
            path: path.to_path_buf(),
            source,
        })?;
    replay_bytes(&bytes)
}

/// [`replay`] over an in-memory journal image.
///
/// # Errors
///
/// As [`replay`], minus the I/O.
pub fn replay_bytes(bytes: &[u8]) -> Result<JournalReplay, ServeError> {
    if bytes.len() < JOURNAL_HEADER_LEN as usize {
        return Err(ServeError::Wire(WireError::Truncated("journal header")));
    }
    let magic: [u8; 4] = bytes[..4].try_into().expect("length checked");
    if magic != JOURNAL_MAGIC {
        return Err(ServeError::Wire(WireError::BadMagic(magic)));
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(ServeError::Wire(WireError::UnsupportedVersion(bytes[4])));
    }
    let layout_hash = u64::from_le_bytes(bytes[5..13].try_into().expect("length checked"));
    let mut pos = JOURNAL_HEADER_LEN as usize;
    let mut envelopes = Vec::new();
    let mut skipped_crc = 0u64;
    let mut torn_tail = false;
    let mut good_bytes = pos as u64;
    loop {
        match take_envelope(bytes, &mut pos) {
            Ok(None) => break,
            Ok(Some(read)) => {
                good_bytes = pos as u64;
                if read.crc_ok {
                    envelopes.push(read.envelope);
                } else {
                    skipped_crc += 1;
                }
            }
            Err(e) => {
                // Any decode failure mid-record is crash debris: the
                // writer died inside `write_all`.  Everything before it
                // is intact; everything from here on is garbage.
                debug_assert!(!matches!(e.kind(), WireErrorKind::Io));
                torn_tail = true;
                break;
            }
        }
    }
    Ok(JournalReplay {
        layout_hash,
        envelopes,
        torn_tail,
        skipped_crc,
        good_bytes,
    })
}

/// Reopens a journal for appending after a restart: replays it,
/// truncates any torn tail, and validates the layout hash against the
/// binary the server is now serving.
///
/// # Errors
///
/// Returns [`ServeError::Config`] on a layout-hash mismatch (the
/// journal belongs to a different instrumented binary), plus the
/// [`replay`] errors.
pub fn resume(
    path: impl Into<PathBuf>,
    expected_layout_hash: u64,
    policy: FsyncPolicy,
) -> Result<(Journal, JournalReplay), ServeError> {
    let path = path.into();
    let recovered = replay(&path)?;
    if recovered.layout_hash != expected_layout_hash {
        return Err(ServeError::Config(format!(
            "journal {} was written for layout {:#018x}, server is serving {:#018x}",
            path.display(),
            recovered.layout_hash,
            expected_layout_hash
        )));
    }
    let journal_err = |path: &PathBuf, source| ServeError::Journal {
        path: path.clone(),
        source,
    };
    let mut file = OpenOptions::new()
        .write(true)
        .open(&path)
        .map_err(|e| journal_err(&path, e))?;
    file.set_len(recovered.good_bytes)
        .map_err(|e| journal_err(&path, e))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| journal_err(&path, e))?;
    file.sync_all().map_err(|e| journal_err(&path, e))?;
    let journal = Journal {
        file,
        path,
        policy,
        records: 0,
        bytes: recovered.good_bytes,
        unsynced: 0,
        buf: Vec::with_capacity(256),
    };
    Ok((journal, recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cbi-journal-test-{}-{name}", std::process::id()));
        p
    }

    fn sample(n: u64) -> BatchEnvelope {
        BatchEnvelope::new(n, n * 10, 1, vec![n as u8; 16 + n as usize])
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("batch").unwrap(),
            FsyncPolicy::EveryBatch
        );
        assert_eq!(
            FsyncPolicy::parse("every:64").unwrap(),
            FsyncPolicy::EveryN(64)
        );
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path, 0xabcd, FsyncPolicy::EveryN(2)).unwrap();
        for n in 0..5 {
            j.append(&sample(n)).unwrap();
        }
        assert_eq!(j.records(), 5);
        drop(j);
        let r = replay(&path).unwrap();
        assert_eq!(r.layout_hash, 0xabcd);
        assert_eq!(r.envelopes.len(), 5);
        assert!(!r.torn_tail);
        assert_eq!(r.skipped_crc, 0);
        assert_eq!(r.envelopes[3], sample(3));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncated_and_resumed() {
        let path = tmp("torn");
        let mut j = Journal::create(&path, 7, FsyncPolicy::Never).unwrap();
        for n in 0..3 {
            j.append(&sample(n)).unwrap();
        }
        let full = j.bytes();
        drop(j);
        // Tear the final record mid-payload.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.envelopes.len(), 2);
        assert!(r.good_bytes < full);

        let (mut j, recovered) = resume(&path, 7, FsyncPolicy::EveryBatch).unwrap();
        assert_eq!(recovered.envelopes.len(), 2);
        // The torn record is gone; appending resumes cleanly.
        j.append(&sample(9)).unwrap();
        drop(j);
        let r = replay(&path).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.envelopes.len(), 3);
        assert_eq!(r.envelopes[2], sample(9));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc_damage_is_skipped_not_fatal() {
        let path = tmp("crc");
        let mut j = Journal::create(&path, 7, FsyncPolicy::Never).unwrap();
        for n in 0..3 {
            j.append(&sample(n)).unwrap();
        }
        drop(j);
        // Flip one payload byte in the middle record: framing intact,
        // CRC broken.
        let mut bytes = fs::read(&path).unwrap();
        let r = replay_bytes(&bytes).unwrap();
        let first_len = r.envelopes[0].encode().len();
        let target = JOURNAL_HEADER_LEN as usize + first_len + first_len / 2 + 8;
        bytes[target] ^= 0xff;
        let r = replay_bytes(&bytes).unwrap();
        assert_eq!(r.skipped_crc, 1);
        assert_eq!(r.envelopes.len(), 2);
        assert!(!r.torn_tail);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_wrong_layout() {
        let path = tmp("layout");
        Journal::create(&path, 1, FsyncPolicy::Never).unwrap();
        assert!(matches!(
            resume(&path, 2, FsyncPolicy::Never),
            Err(ServeError::Config(_))
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_rejected() {
        let path = tmp("notjournal");
        fs::write(&path, b"CBIRnot a journal at all").unwrap();
        assert!(matches!(
            replay(&path),
            Err(ServeError::Wire(WireError::BadMagic(_)))
        ));
        fs::remove_file(&path).unwrap();
    }
}
