//! Per-shard ingest state and the ordered merge that turns committed
//! batches into the authoritative analysis.
//!
//! A shard owns everything keyed by `client mod shards`: the dedup set,
//! a live [`StreamingAnalyzer`] over its own arrival order (cheap
//! monitoring; order-dependent, so never merged directly), and — when
//! no journal holds them — the committed envelopes themselves.  The
//! final analysis never reads the live analyzers: [`fold_ordered`]
//! re-decodes every committed batch in `(seq, client)` order into a
//! fresh [`EpochAggregator`], the same discipline the campaign driver
//! uses to keep `--jobs` out of its output.  Shard count, arrival
//! interleaving, and crash/replay history therefore cannot leak into
//! the result: any history committing the same batch set folds to the
//! same bytes.

use crate::journal::Journal;
use crate::ServeError;
use cbi::{EpochAggregator, StreamingAnalyzer, StreamingConfig};
use cbi_instrument::SiteTable;
use cbi_reports::{
    decode_batch, AckVerdict, BatchEnvelope, Collector, DecodeOutcome, Provenance, ReportLayout,
    ReportSink, WireErrorKind,
};
use std::collections::HashSet;
use std::sync::Mutex;

/// One shard's ingest accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Batches committed (first-time accepts).
    pub batches: u64,
    /// Retransmits answered `duplicate` without re-ingest.
    pub duplicates: u64,
    /// Deliveries whose payload failed to decode.
    pub rejected: u64,
    /// Deliveries whose payload failed its envelope CRC.
    pub crc_failures: u64,
    /// Reports inside committed batches.
    pub reports: u64,
    /// Payload bytes inside committed batches.
    pub bytes: u64,
}

/// A committed batch retained for the shutdown fold (in-memory mode;
/// with a journal the journal file is the retained copy).
#[derive(Debug, Clone)]
pub(crate) struct CommittedBatch {
    pub client: u64,
    pub seq: u64,
    pub attempt: u32,
    pub origin: Option<String>,
    pub payload: Vec<u8>,
}

/// A delivery whose payload failed to decode — kept so the fold can
/// attribute rejections (stale clients, truncation) with provenance.
#[derive(Debug, Clone)]
pub(crate) struct RejectEvent {
    pub client: u64,
    pub seq: u64,
    pub attempt: u32,
    pub origin: Option<String>,
    pub kind: WireErrorKind,
}

/// Everything one shard owns.
pub(crate) struct ShardState {
    pub index: usize,
    layout: ReportLayout,
    keep: bool,
    analyzer: StreamingAnalyzer,
    dedup: HashSet<(u64, u64)>,
    pub committed: Vec<CommittedBatch>,
    pub rejects: Vec<RejectEvent>,
    pub stats: ShardStats,
}

impl ShardState {
    /// Builds a shard.  `keep` retains committed payloads in memory for
    /// the shutdown fold; pass `false` when a journal holds them.
    pub fn new(
        index: usize,
        layout: ReportLayout,
        streaming: StreamingConfig,
        keep: bool,
    ) -> Result<ShardState, ServeError> {
        let mut analyzer = StreamingAnalyzer::new(streaming);
        analyzer.begin(layout)?;
        Ok(ShardState {
            index,
            layout,
            keep,
            analyzer,
            dedup: HashSet::new(),
            committed: Vec::new(),
            rejects: Vec::new(),
            stats: ShardStats::default(),
        })
    }

    /// Processes one delivered envelope: CRC gate, dedup, decode,
    /// journal-then-commit.  Returns the verdict to ack with.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Journal`] if the journal append fails (the
    /// batch is then *not* committed and must not be acked) or
    /// [`ServeError::Sink`] if the live analyzer rejects a report.
    pub fn process(
        &mut self,
        origin: Option<&str>,
        envelope: BatchEnvelope,
        crc_ok: bool,
        journal: Option<&Mutex<Journal>>,
    ) -> Result<AckVerdict, ServeError> {
        if !crc_ok {
            self.stats.crc_failures += 1;
            return Ok(AckVerdict::BadCrc);
        }
        if self.dedup.contains(&(envelope.client, envelope.seq)) {
            self.stats.duplicates += 1;
            return Ok(AckVerdict::Duplicate);
        }
        match decode_batch(&envelope.payload, Some(self.layout)) {
            Err(rejected) => {
                let kind = rejected.error.kind();
                self.stats.rejected += 1;
                self.rejects.push(RejectEvent {
                    client: envelope.client,
                    seq: envelope.seq,
                    attempt: envelope.attempt,
                    origin: origin.map(str::to_string),
                    kind,
                });
                Ok(AckVerdict::Rejected(kind))
            }
            Ok((reports, _header, consumed)) => {
                if let Some(journal) = journal {
                    let mut journal = journal
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    journal.append(&envelope)?;
                }
                self.commit(origin, envelope, &reports, consumed)?;
                Ok(AckVerdict::Accepted)
            }
        }
    }

    /// Re-ingests a journaled envelope during resume: rebuilds dedup
    /// and live-analyzer state without re-appending or re-retaining.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Wire`] if a journaled payload no longer
    /// decodes (it was validated before it was written, so this means
    /// on-disk damage the CRC missed) or [`ServeError::Sink`] from the
    /// live analyzer.
    pub fn replay(&mut self, envelope: BatchEnvelope) -> Result<(), ServeError> {
        let (reports, _header, consumed) = decode_batch(&envelope.payload, Some(self.layout))
            .map_err(|rejected| ServeError::Wire(rejected.error))?;
        let keep = self.keep;
        self.keep = false; // the journal already holds it
        let committed = self.commit(None, envelope, &reports, consumed);
        self.keep = keep;
        committed
    }

    fn commit(
        &mut self,
        origin: Option<&str>,
        envelope: BatchEnvelope,
        reports: &[cbi_reports::Report],
        consumed: u64,
    ) -> Result<(), ServeError> {
        self.dedup.insert((envelope.client, envelope.seq));
        for report in reports {
            self.analyzer.accept(report.clone())?;
        }
        self.stats.batches += 1;
        self.stats.reports += reports.len() as u64;
        self.stats.bytes += consumed;
        if self.keep {
            self.committed.push(CommittedBatch {
                client: envelope.client,
                seq: envelope.seq,
                attempt: envelope.attempt,
                origin: origin.map(str::to_string),
                payload: envelope.payload,
            });
        }
        Ok(())
    }

    /// The live analyzer's resident-report high-water mark.
    pub fn high_water(&self) -> usize {
        self.analyzer.high_water()
    }
}

fn provenance(client: u64, attempt: u32, origin: Option<&str>) -> Provenance {
    match origin {
        Some(origin) => Provenance::new(client, attempt).with_cohort(origin),
        None => Provenance::new(client, attempt),
    }
}

/// The ordered merge: folds every committed batch (and every rejected
/// delivery) into a fresh [`EpochAggregator`] in `(seq, client,
/// attempt)` order, re-decoding payloads as it goes.
///
/// `collector` optionally archives every accepted report (the
/// regression path needs the full archive).
///
/// # Errors
///
/// Returns [`ServeError::Wire`] if a retained payload fails to decode
/// and [`ServeError::Sink`] on aggregator/collector rejection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fold_ordered(
    sites: &SiteTable,
    layout: ReportLayout,
    epoch_len: u64,
    streaming: StreamingConfig,
    flight_capacity: usize,
    target_counter: Option<usize>,
    mut committed: Vec<CommittedBatch>,
    mut rejects: Vec<RejectEvent>,
    mut collector: Option<&mut Collector>,
) -> Result<EpochAggregator, ServeError> {
    let _fold = cbi_telemetry::span("serve.fold");
    committed.sort_by_key(|a| (a.seq, a.client));
    rejects.sort_by_key(|a| (a.seq, a.client, a.attempt));

    let mut aggregator = EpochAggregator::new(sites.clone(), epoch_len, streaming, target_counter)
        .with_flight_capacity(flight_capacity);
    aggregator.begin(layout)?;

    // Merge the two sorted runs; a rejected delivery of a batch sorts
    // before the delivery that finally committed it.
    let mut rejects = rejects.into_iter().peekable();
    for batch in committed {
        while rejects
            .peek()
            .is_some_and(|r| (r.seq, r.client) <= (batch.seq, batch.client))
        {
            let r = rejects.next().expect("peeked");
            let prov = provenance(r.client, r.attempt, r.origin.as_deref());
            aggregator.note_batch(&prov, DecodeOutcome::Rejected(r.kind), 0);
        }
        let (reports, _header, consumed) = decode_batch(&batch.payload, Some(layout))
            .map_err(|rejected| ServeError::Wire(rejected.error))?;
        let prov = provenance(batch.client, batch.attempt, batch.origin.as_deref());
        aggregator.note_retries(prov.cohort_label(), batch.attempt as u64);
        aggregator.note_batch(&prov, DecodeOutcome::Clean, consumed);
        for report in reports {
            if let Some(collector) = collector.as_deref_mut() {
                collector
                    .add(report.clone())
                    .map_err(cbi_reports::SinkError::from)?;
            }
            aggregator.accept(report)?;
        }
    }
    for r in rejects {
        let prov = provenance(r.client, r.attempt, r.origin.as_deref());
        aggregator.note_batch(&prov, DecodeOutcome::Rejected(r.kind), 0);
    }
    if !aggregator.runs().is_multiple_of(epoch_len) || aggregator.snapshots().is_empty() {
        aggregator.snapshot_now();
    }
    Ok(aggregator)
}
