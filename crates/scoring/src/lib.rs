//! Statistical fault-localisation scorers and the iterative multi-bug
//! isolation engine.
//!
//! The paper ranks predicates with one regression model and notes
//! (§3.3) that a real deployment faces *many* bugs at once, resolved by
//! a redundancy-elimination loop: rank, attribute the top predicate to
//! a bug, discard the failing runs it explains, re-rank.  This crate
//! makes both halves first-class:
//!
//! * [`score`] — a [`Scorer`] trait over per-predicate
//!   [`Contingency`](cbi_stats::Contingency) tables (extracted from the
//!   sufficient statistics every collector already folds — no resident
//!   reports), with implementations for Ochiai, Tarantula, Jaccard, the
//!   paper's §3.2 Increase/Importance statistic, and two Doric-style
//!   probabilistic measures.  Every score is an integer in fixed-point
//!   per-mille, so rankings are byte-identical at any worker count and
//!   on any platform — there is no floating point anywhere in a scorer.
//! * [`isolate`] — a [`FailureIndex`] report sink retaining, per
//!   *failing* run only, the sparse set of nonzero counters (successes
//!   fold into aggregates and are discarded), and the [`isolate`]
//!   engine that runs the §3.3 loop to completion, emitting a typed
//!   per-iteration [`IsolationRun`] trace with one predicate cluster
//!   per iteration.
//!
//! Determinism contract: given the same report stream the index, every
//! ranking, and the whole isolation trace are bit-identical — ties in
//! score break by counter index, and all arithmetic is integer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod isolate;
pub mod score;

pub use isolate::{
    isolate, FailingRun, FailureIndex, IsolationCluster, IsolationRun, IsolationStep,
};
pub use score::{
    all_scorers, rank_of, rank_tables, scorer_by_name, Scorer, SCORER_NAMES, SCORE_ONE,
};
