//! The [`Scorer`] trait and the scorer suite.
//!
//! A scorer maps one predicate's [`Contingency`] table to a score in
//! **fixed-point per-mille**: an `i64` where 1000 represents 1.0.  All
//! arithmetic is integer (`u128` intermediates, integer square root for
//! Ochiai), so two machines — or two worker counts — that fold the same
//! report stream produce bit-identical rankings.  Ties in score break
//! by counter index, ascending, which pins the reported rank of every
//! predicate even when a measure assigns the same value to many.
//!
//! The suite:
//!
//! | name         | formula (per-mille)                                   |
//! |--------------|-------------------------------------------------------|
//! | `ochiai`     | `ef / √(F·(ef+ep))`                                   |
//! | `tarantula`  | `ef·S / (ef·S + ep·F)`                                |
//! | `jaccard`    | `ef / (F + ep)`                                       |
//! | `increase`   | `ef/(ef+ep) − obs_f/(obs_f+obs_s)` (§3.2 Increase)    |
//! | `importance` | harmonic mean of `increase` and recall `ef/F`         |
//! | `posterior`  | Laplace-smoothed `P(fail │ P)`: `(ef+1)/(ef+ep+2)`    |
//! | `odds`       | smoothed odds ratio, normalised to `x/(1+x)`          |
//!
//! `posterior` and `odds` are Doric-style probabilistic measures: both
//! read the table as Bayesian evidence about `P(fail | P observed)`
//! with a uniform prior, which keeps them defined (and bounded) on the
//! degenerate tables frequency ratios blow up on.  Every scorer returns
//! 0 for a predicate never observed in a failing run — a predicate that
//! cannot explain any failure must never outrank one that can.

use cbi_stats::Contingency;

/// One unit on the fixed-point score scale (1.0 == 1000 per-mille).
pub const SCORE_ONE: i64 = 1000;

/// A statistical fault-localisation measure over contingency tables.
///
/// Implementations must be pure integer functions of the table: no
/// floating point, no interior state, no randomness.  That contract is
/// what makes every ranking byte-identical at any `--jobs` setting.
pub trait Scorer: Sync {
    /// Stable registry name (also the CLI spelling).
    fn name(&self) -> &'static str;
    /// The predicate's score in fixed-point per-mille.  Higher is more
    /// failure-predictive; negative values are allowed (Increase).
    fn score(&self, t: &Contingency) -> i64;
}

/// Integer square root (floor) over `u128`.
fn isqrt(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    let mut x = 1u128 << (v.ilog2() / 2 + 1);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// `ef / √(F·(ef+ep))` — geometric mean of recall and precision.
pub struct Ochiai;

impl Scorer for Ochiai {
    fn name(&self) -> &'static str {
        "ochiai"
    }

    fn score(&self, t: &Contingency) -> i64 {
        let denom = t.f as u128 * (t.ef + t.ep) as u128;
        if t.ef == 0 || denom == 0 {
            return 0;
        }
        let scaled = (t.ef as u128 * t.ef as u128) * 1_000_000 / denom;
        (isqrt(scaled) as i64).min(SCORE_ONE)
    }
}

/// `(ef/F) / (ef/F + ep/S)`, cleared of divisions: `ef·S / (ef·S + ep·F)`.
pub struct Tarantula;

impl Scorer for Tarantula {
    fn name(&self) -> &'static str {
        "tarantula"
    }

    fn score(&self, t: &Contingency) -> i64 {
        let num = t.ef as u128 * t.s as u128;
        let denom = num + t.ep as u128 * t.f as u128;
        if t.ef == 0 || denom == 0 {
            return 0;
        }
        (num * SCORE_ONE as u128 / denom) as i64
    }
}

/// `ef / (F + ep)` — set overlap between "P observed true" and "run failed".
pub struct Jaccard;

impl Scorer for Jaccard {
    fn name(&self) -> &'static str {
        "jaccard"
    }

    fn score(&self, t: &Contingency) -> i64 {
        let denom = t.f + t.ep;
        if t.ef == 0 || denom == 0 {
            return 0;
        }
        (t.ef as u128 * SCORE_ONE as u128 / denom as u128) as i64
    }
}

/// The paper's §3.2 Increase statistic: how much more likely is failure
/// when the predicate is observed *true* than when its site is merely
/// *reached*?  `Failure(P) − Context(P)`, each term in per-mille; the
/// only scorer that can go negative (a predicate whose truth makes
/// failure *less* likely).
pub struct Increase;

impl Scorer for Increase {
    fn name(&self) -> &'static str {
        "increase"
    }

    fn score(&self, t: &Contingency) -> i64 {
        let observed = t.ef + t.ep;
        if observed == 0 {
            return 0;
        }
        let failure = (t.ef as u128 * SCORE_ONE as u128 / observed as u128) as i64;
        let reached = t.obs_f + t.obs_s;
        let context = if reached == 0 {
            0
        } else {
            (t.obs_f as u128 * SCORE_ONE as u128 / reached as u128) as i64
        };
        failure - context
    }
}

/// Importance: the harmonic mean of [`Increase`] and recall `ef/F`,
/// balancing "predicts failure when true" against "covers many
/// failures" — the §3.2 ranking made a single number.
pub struct Importance;

impl Scorer for Importance {
    fn name(&self) -> &'static str {
        "importance"
    }

    fn score(&self, t: &Contingency) -> i64 {
        let increase = Increase.score(t);
        let recall = if t.f == 0 {
            0
        } else {
            (t.ef as u128 * SCORE_ONE as u128 / t.f as u128) as i64
        };
        if increase <= 0 || recall <= 0 {
            return 0;
        }
        2 * increase * recall / (increase + recall)
    }
}

/// Doric-style posterior: Laplace-smoothed `P(fail | P observed true)`
/// = `(ef+1)/(ef+ep+2)` — a Beta(1,1) prior keeps the estimate defined
/// and shrinks single-observation predicates toward ½.
pub struct Posterior;

impl Scorer for Posterior {
    fn name(&self) -> &'static str {
        "posterior"
    }

    fn score(&self, t: &Contingency) -> i64 {
        if t.ef == 0 {
            return 0;
        }
        ((t.ef + 1) as u128 * SCORE_ONE as u128 / (t.ef + t.ep + 2) as u128) as i64
    }
}

/// Doric-style odds ratio with add-one smoothing, normalised to
/// `x/(1+x)` so it stays in per-mille: compares the odds of observing
/// the predicate in a failing run against a successful one.
pub struct OddsRatio;

impl Scorer for OddsRatio {
    fn name(&self) -> &'static str {
        "odds"
    }

    fn score(&self, t: &Contingency) -> i64 {
        if t.ef == 0 {
            return 0;
        }
        let a = (t.ef + 1) as u128 * (t.s.saturating_sub(t.ep) + 1) as u128;
        let b = (t.ep + 1) as u128 * (t.f.saturating_sub(t.ef) + 1) as u128;
        (a * SCORE_ONE as u128 / (a + b)) as i64
    }
}

/// Registry order: the CLI spelling of every scorer in the suite.
pub const SCORER_NAMES: &[&str] = &[
    "ochiai",
    "tarantula",
    "jaccard",
    "increase",
    "importance",
    "posterior",
    "odds",
];

/// Looks a scorer up by registry name.
pub fn scorer_by_name(name: &str) -> Option<&'static dyn Scorer> {
    match name {
        "ochiai" => Some(&Ochiai),
        "tarantula" => Some(&Tarantula),
        "jaccard" => Some(&Jaccard),
        "increase" => Some(&Increase),
        "importance" => Some(&Importance),
        "posterior" => Some(&Posterior),
        "odds" => Some(&OddsRatio),
        _ => None,
    }
}

/// The whole suite, in registry order.
pub fn all_scorers() -> Vec<&'static dyn Scorer> {
    SCORER_NAMES
        .iter()
        .map(|n| scorer_by_name(n).expect("registry names resolve"))
        .collect()
}

/// Ranks every counter by score, descending, breaking ties by counter
/// index ascending.  The tie-break is part of the determinism contract:
/// measures like Tarantula assign identical scores to whole families of
/// predicates, and without a total order their reported ranks would be
/// free to permute between runs or scorers.
pub fn rank_tables(scorer: &dyn Scorer, tables: &[Contingency]) -> Vec<(usize, i64)> {
    let mut ranked: Vec<(usize, i64)> = tables
        .iter()
        .enumerate()
        .map(|(i, t)| (i, scorer.score(t)))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// 0-based position of `counter` in a ranking from [`rank_tables`].
pub fn rank_of(ranking: &[(usize, i64)], counter: usize) -> Option<usize> {
    ranking.iter().position(|&(c, _)| c == counter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ef: u64, ep: u64, f: u64, s: u64, obs_f: u64, obs_s: u64) -> Contingency {
        Contingency {
            ef,
            ep,
            f,
            s,
            obs_f,
            obs_s,
        }
    }

    /// Closed-form checks on a hand-built table:
    /// ef=3, ep=1, F=4, S=6, site reached in 4 failing / 3 successful runs.
    #[test]
    fn closed_form_scores_on_a_mixed_table() {
        let mixed = t(3, 1, 4, 6, 4, 3);
        // √(9·10⁶ / (4·4)) = √562500 = 750
        assert_eq!(Ochiai.score(&mixed), 750);
        // 18·1000 / (18 + 4) = 818
        assert_eq!(Tarantula.score(&mixed), 818);
        // 3000 / (4 + 1) = 600
        assert_eq!(Jaccard.score(&mixed), 600);
        // 3000/4 − 4000/7 = 750 − 571 = 179
        assert_eq!(Increase.score(&mixed), 179);
        // recall 3000/4 = 750; harmonic(179, 750) = 2·179·750/929 = 289
        assert_eq!(Importance.score(&mixed), 289);
        // (3+1)·1000 / (3+1+2) = 666
        assert_eq!(Posterior.score(&mixed), 666);
        // a = 4·(6−1+1) = 24, b = 2·(4−3+1) = 4 → 24000/28 = 857
        assert_eq!(OddsRatio.score(&mixed), 857);
    }

    /// A perfect deterministic-bug predicate: observed in every failing
    /// run, never in a success, site reached in both classes.
    #[test]
    fn perfect_predicate_saturates_the_similarity_scores() {
        let perfect = t(5, 0, 5, 5, 5, 5);
        assert_eq!(Ochiai.score(&perfect), 1000);
        assert_eq!(Tarantula.score(&perfect), 1000);
        assert_eq!(Jaccard.score(&perfect), 1000);
        // Failure(P)=1000, Context(P)=500 → 500; recall 1000.
        assert_eq!(Increase.score(&perfect), 500);
        assert_eq!(Importance.score(&perfect), 666);
        assert_eq!(Posterior.score(&perfect), 857);
        // a = 6·6 = 36, b = 1·1 = 1 → 36000/37 = 972
        assert_eq!(OddsRatio.score(&perfect), 972);
    }

    /// Zero failing runs: every scorer is 0 for every predicate (there
    /// is nothing to explain), and nothing divides by zero.
    #[test]
    fn zero_failing_runs_scores_zero_everywhere() {
        let no_failures = t(0, 7, 0, 10, 0, 8);
        for scorer in all_scorers() {
            assert_eq!(
                scorer.score(&no_failures),
                0,
                "{} must be 0 with no failing runs",
                scorer.name()
            );
        }
    }

    /// An always-true predicate (observed in every run of both classes)
    /// scores the base failure rate, not a false signal.
    #[test]
    fn always_true_predicate_tracks_the_base_rate() {
        let always = t(4, 6, 4, 6, 4, 6);
        // √(16·10⁶/40) = √400000 = 632
        assert_eq!(Ochiai.score(&always), 632);
        assert_eq!(Tarantula.score(&always), 500);
        assert_eq!(Jaccard.score(&always), 400);
        // Failure(P) == Context(P): truth adds nothing over reaching the site.
        assert_eq!(Increase.score(&always), 0);
        assert_eq!(Importance.score(&always), 0);
        assert_eq!(Posterior.score(&always), 416);
        // a = 5·1 = 5, b = 7·1 = 7 → 5000/12 = 416
        assert_eq!(OddsRatio.score(&always), 416);
    }

    /// A never-observed predicate scores 0 under every measure — the
    /// probabilistic priors must not float unobserved predicates above
    /// observed ones.
    #[test]
    fn unobserved_predicate_scores_zero() {
        let unobserved = t(0, 0, 4, 6, 0, 0);
        for scorer in all_scorers() {
            assert_eq!(scorer.score(&unobserved), 0, "{}", scorer.name());
        }
    }

    /// A protective predicate (fires only in successes) goes negative
    /// under Increase and 0 everywhere else.
    #[test]
    fn protective_predicate_is_negative_increase() {
        let protective = t(0, 5, 4, 6, 2, 5);
        assert_eq!(Increase.score(&protective), -285);
        assert_eq!(Importance.score(&protective), 0);
        assert_eq!(Ochiai.score(&protective), 0);
    }

    #[test]
    fn ranking_breaks_ties_by_counter_index() {
        // Counters 1 and 3 tie at 1000 under Tarantula (both ep=0);
        // counter 0 is unobserved; counter 2 is weaker.
        let tables = vec![
            t(0, 0, 4, 6, 0, 0),
            t(2, 0, 4, 6, 2, 0),
            t(3, 2, 4, 6, 3, 2),
            t(1, 0, 4, 6, 1, 0),
        ];
        let ranking = rank_tables(&Tarantula, &tables);
        let order: Vec<usize> = ranking.iter().map(|&(c, _)| c).collect();
        assert_eq!(order, vec![1, 3, 2, 0], "tie at 1000 must order 1 before 3");
        assert_eq!(rank_of(&ranking, 3), Some(1));
        assert_eq!(rank_of(&ranking, 0), Some(3));
    }

    #[test]
    fn registry_is_total() {
        for name in SCORER_NAMES {
            assert_eq!(scorer_by_name(name).unwrap().name(), *name);
        }
        assert!(scorer_by_name("regress").is_none());
        assert_eq!(all_scorers().len(), SCORER_NAMES.len());
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for v in [0u128, 1, 2, 3, 4, 15, 16, 999_999, 1_000_000, u64::MAX as u128] {
            let r = isqrt(v);
            assert!(r * r <= v);
            assert!((r + 1) * (r + 1) > v);
        }
    }
}
