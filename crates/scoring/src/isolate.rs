//! The §3.3 iterative multi-bug isolation loop.
//!
//! One ranking conflates every bug in a deployment: the best predictor
//! of bug A outranks everything, and the predictors of bug B hide in
//! its shadow.  The paper's remedy is redundancy elimination — take the
//! top-ranked predicate, attribute it to one bug, *discard the failing
//! runs it explains*, and re-rank what remains; repeat until no
//! failures are left.  Each iteration surfaces one bug as a cluster of
//! failing runs plus the predicate that explains them.
//!
//! Running that loop needs one thing sufficient statistics cannot give:
//! which *individual* failing runs a predicate covers, so they can be
//! removed.  [`FailureIndex`] is a [`ReportSink`] that retains exactly
//! that and nothing more — per failing run, the sparse set of nonzero
//! counter indices; successful runs fold into per-counter aggregates
//! and are dropped.  Memory is O(failures × nonzero counters), not
//! O(runs × layout width), so the index scales to the same deployments
//! the streaming analyzer does.
//!
//! [`isolate`] then runs the loop to completion with any [`Scorer`],
//! emitting a typed [`IsolationRun`] trace: the initial whole-corpus
//! ranking, one [`IsolationStep`] per iteration, and the trial ids of
//! any failures no positively-scored predicate could explain.  The
//! trace is deterministic: integer scores, counter-index tie-breaks,
//! and run-id-ordered report delivery make it byte-identical at any
//! worker count.

use crate::score::{rank_tables, Scorer};
use cbi_reports::{Label, Report, ReportLayout, ReportSink, SinkError};
use cbi_stats::Contingency;

/// One failing run, reduced to its sparse observation set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailingRun {
    /// The run id the campaign assigned (trial index).
    pub trial: u64,
    /// Indices of counters observed nonzero in this run, ascending.
    pub nonzero: Vec<u32>,
}

/// A [`ReportSink`] retaining per-run detail for failures only.
///
/// Successful runs contribute to per-counter aggregates (`ep` and the
/// site-reach estimate) and are immediately discarded; failing runs
/// keep their sparse nonzero set so the isolation loop can attribute
/// and remove them one cluster at a time.
#[derive(Debug, Default)]
pub struct FailureIndex {
    layout: Option<ReportLayout>,
    failures: Vec<FailingRun>,
    successes: u64,
    /// Per counter: successful runs in which it was nonzero.
    success_nonzero: Vec<u64>,
}

impl FailureIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters per report, 0 before [`ReportSink::begin`].
    pub fn counter_count(&self) -> usize {
        self.layout.map_or(0, |l| l.counters)
    }

    /// The layout hash announced at [`ReportSink::begin`], if any.
    pub fn layout_hash(&self) -> Option<u64> {
        self.layout.map(|l| l.layout_hash)
    }

    /// Total successful runs folded (and discarded).
    pub fn success_runs(&self) -> u64 {
        self.successes
    }

    /// Total failing runs retained.
    pub fn failure_runs(&self) -> u64 {
        self.failures.len() as u64
    }

    /// The retained failing runs, in run-id order.
    pub fn failures(&self) -> &[FailingRun] {
        &self.failures
    }

    /// Successful runs in which `counter` was observed nonzero.
    pub fn success_nonzero(&self, counter: usize) -> u64 {
        self.success_nonzero.get(counter).copied().unwrap_or(0)
    }

    /// Contingency tables over the full corpus (every failing run
    /// active), as the initial pre-isolation ranking sees them.
    pub fn tables(&self, groups: &[(usize, usize)]) -> Vec<Contingency> {
        let active: Vec<bool> = vec![true; self.failures.len()];
        self.tables_for(&active, groups)
    }

    /// Contingency tables restricted to the failing runs flagged in
    /// `active`.  The success side is the full-corpus aggregate — the
    /// loop only ever removes *failing* runs.
    fn tables_for(&self, active: &[bool], groups: &[(usize, usize)]) -> Vec<Contingency> {
        let n = self.counter_count();
        let f_active = active.iter().filter(|&&a| a).count() as u64;

        // Failure side: exact per-counter and per-site counts over the
        // active runs.  A run touches a site once no matter how many of
        // the site's counters it observed.
        let mut ef = vec![0u64; n];
        let mut site_f = vec![0u64; groups.len()];
        let group_of = group_map(n, groups);
        let mut touched: Vec<usize> = Vec::new();
        for (run, act) in self.failures.iter().zip(active) {
            if !act {
                continue;
            }
            touched.clear();
            for &c in &run.nonzero {
                let c = c as usize;
                if c >= n {
                    continue;
                }
                ef[c] += 1;
                if let Some(g) = group_of[c] {
                    if !touched.contains(&g) {
                        touched.push(g);
                        site_f[g] += 1;
                    }
                }
            }
        }

        // Success side: clamped-sum site estimates from aggregates,
        // identical in shape to `cbi_stats::contingency_tables`.
        let mut site_s = vec![0u64; groups.len()];
        for (g, &(base, arity)) in groups.iter().enumerate() {
            site_s[g] = (base..(base + arity).min(n))
                .map(|c| self.success_nonzero[c])
                .sum::<u64>()
                .min(self.successes);
        }

        (0..n)
            .map(|c| Contingency {
                ef: ef[c],
                ep: self.success_nonzero[c],
                f: f_active,
                s: self.successes,
                obs_f: group_of[c].map_or(ef[c], |g| site_f[g]),
                obs_s: group_of[c].map_or(self.success_nonzero[c], |g| site_s[g]),
            })
            .collect()
    }
}

/// Maps each counter to the index of the site group containing it.
fn group_map(n: usize, groups: &[(usize, usize)]) -> Vec<Option<usize>> {
    let mut map = vec![None; n];
    for (g, &(base, arity)) in groups.iter().enumerate() {
        for slot in map.iter_mut().skip(base).take(arity) {
            *slot = Some(g);
        }
    }
    map
}

impl ReportSink for FailureIndex {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        self.layout = Some(layout);
        self.success_nonzero = vec![0; layout.counters];
        self.failures.clear();
        self.successes = 0;
        Ok(())
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        if self.layout.is_none() {
            return Err(SinkError::NotBegun);
        }
        match report.label {
            Label::Failure => {
                let nonzero: Vec<u32> = report
                    .counters
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, _)| i as u32)
                    .collect();
                self.failures.push(FailingRun {
                    trial: report.run_id,
                    nonzero,
                });
            }
            Label::Success => {
                self.successes += 1;
                for (i, &v) in report.counters.iter().enumerate() {
                    if v != 0 && i < self.success_nonzero.len() {
                        self.success_nonzero[i] += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

/// One bug surfaced by one iteration: the chosen predicate and the
/// failing runs it explains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationCluster {
    /// Counter index of the predicate attributed to this bug.
    pub counter: usize,
    /// Its score (per-mille) over the runs active at this iteration.
    pub score: i64,
    /// Trial ids of the failing runs the predicate explains, ascending.
    pub trials: Vec<u64>,
}

/// One iteration of the elimination loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationStep {
    /// 0-based iteration number.
    pub iteration: usize,
    /// The bug cluster this iteration carved off.
    pub cluster: IsolationCluster,
    /// Failing runs still unattributed before this iteration ran.
    pub failures_before: u64,
    /// Failing runs still unattributed after removing the cluster.
    pub failures_after: u64,
}

/// The complete, typed trace of one isolation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationRun {
    /// Registry name of the scorer that drove the loop.
    pub scorer: &'static str,
    /// The whole-corpus ranking before any elimination, as
    /// `(counter, score)` pairs best-first.
    pub initial_ranking: Vec<(usize, i64)>,
    /// One step per iteration, in execution order.
    pub steps: Vec<IsolationStep>,
    /// Trial ids of failing runs no positively-scored predicate could
    /// explain when the loop stopped.
    pub unexplained: Vec<u64>,
}

impl IsolationRun {
    /// Number of iterations the loop executed.
    pub fn iterations(&self) -> usize {
        self.steps.len()
    }

    /// The clusters, in the order they were carved off.
    pub fn clusters(&self) -> impl Iterator<Item = &IsolationCluster> {
        self.steps.iter().map(|s| &s.cluster)
    }

    /// True when every failing run was attributed to some cluster.
    pub fn is_complete(&self) -> bool {
        self.unexplained.is_empty()
    }

    /// 0-based iteration at which `counter` was chosen, if ever.
    pub fn isolated_at(&self, counter: usize) -> Option<usize> {
        self.steps
            .iter()
            .position(|s| s.cluster.counter == counter)
    }
}

/// Runs the §3.3 elimination loop to completion.
///
/// Each iteration ranks every predicate over the still-active failing
/// runs, takes the best one with a positive score that covers at least
/// one active failure (ties break by counter index), clusters the
/// active runs it covers, and removes them.  The loop ends when no
/// failures remain or no predicate qualifies; leftover failures are
/// reported as `unexplained` rather than force-fitted to a cluster.
pub fn isolate(index: &FailureIndex, groups: &[(usize, usize)], scorer: &dyn Scorer) -> IsolationRun {
    let mut active: Vec<bool> = vec![true; index.failures().len()];
    let initial_ranking = rank_tables(scorer, &index.tables(groups));
    let mut steps = Vec::new();

    loop {
        let before = active.iter().filter(|&&a| a).count() as u64;
        if before == 0 {
            break;
        }
        let tables = index.tables_for(&active, groups);
        let ranking = rank_tables(scorer, &tables);
        let Some(&(counter, score)) = ranking
            .iter()
            .find(|&&(c, score)| score > 0 && tables[c].ef > 0)
        else {
            break;
        };

        let mut trials = Vec::new();
        for (i, run) in index.failures().iter().enumerate() {
            if active[i] && run.nonzero.contains(&(counter as u32)) {
                trials.push(run.trial);
                active[i] = false;
            }
        }
        let after = active.iter().filter(|&&a| a).count() as u64;
        steps.push(IsolationStep {
            iteration: steps.len(),
            cluster: IsolationCluster {
                counter,
                score,
                trials,
            },
            failures_before: before,
            failures_after: after,
        });
    }

    let unexplained: Vec<u64> = index
        .failures()
        .iter()
        .zip(&active)
        .filter(|(_, &a)| a)
        .map(|(run, _)| run.trial)
        .collect();

    IsolationRun {
        scorer: scorer.name(),
        initial_ranking,
        steps,
        unexplained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{scorer_by_name, Ochiai};

    fn layout(counters: usize) -> ReportLayout {
        ReportLayout {
            counters,
            layout_hash: 0xfeed,
        }
    }

    /// Two disjoint bugs: counter 0 explains trials 0–1, counter 2
    /// explains trials 2–3; counter 1 fires everywhere (benign).
    fn two_bug_index() -> FailureIndex {
        let mut index = FailureIndex::new();
        index.begin(layout(4)).unwrap();
        let runs = [
            (0, Label::Failure, vec![2, 1, 0, 0]),
            (1, Label::Failure, vec![1, 1, 0, 0]),
            (2, Label::Failure, vec![0, 1, 3, 0]),
            (3, Label::Failure, vec![0, 1, 1, 0]),
            (4, Label::Success, vec![0, 1, 0, 0]),
            (5, Label::Success, vec![0, 1, 0, 1]),
            (6, Label::Success, vec![0, 1, 0, 0]),
            (7, Label::Success, vec![0, 1, 0, 0]),
            (8, Label::Success, vec![0, 1, 0, 0]),
        ];
        for (id, label, counters) in runs {
            index.accept(Report::new(id, label, counters)).unwrap();
        }
        index.finish().unwrap();
        index
    }

    #[test]
    fn index_retains_failures_and_folds_successes() {
        let index = two_bug_index();
        assert_eq!(index.failure_runs(), 4);
        assert_eq!(index.success_runs(), 5);
        assert_eq!(index.failures()[0].nonzero, vec![0, 1]);
        assert_eq!(index.success_nonzero(1), 5);
        assert_eq!(index.success_nonzero(0), 0);
        // Full-corpus tables agree with the aggregates.
        let t = index.tables(&[]);
        assert_eq!((t[0].ef, t[0].ep, t[0].f, t[0].s), (2, 0, 4, 5));
        assert_eq!((t[1].ef, t[1].ep), (4, 5));
    }

    #[test]
    fn accept_before_begin_is_rejected() {
        let mut index = FailureIndex::new();
        let err = index.accept(Report::new(0, Label::Failure, vec![1]));
        assert!(matches!(err, Err(SinkError::NotBegun)));
    }

    #[test]
    fn loop_carves_one_cluster_per_bug() {
        let index = two_bug_index();
        let run = isolate(&index, &[], &Ochiai);
        assert_eq!(run.scorer, "ochiai");
        assert_eq!(run.iterations(), 2);
        assert!(run.is_complete());
        // Both bug predicates score √(2²/(4·2)) = 707 over the full
        // corpus; the tie breaks by counter index, so counter 0 is
        // carved off first.
        assert_eq!(run.steps[0].cluster.counter, 0);
        assert_eq!(run.steps[0].cluster.trials, vec![0, 1]);
        assert_eq!(run.steps[0].cluster.score, 707);
        assert_eq!((run.steps[0].failures_before, run.steps[0].failures_after), (4, 2));
        assert_eq!(run.steps[1].cluster.counter, 2);
        assert_eq!(run.steps[1].cluster.trials, vec![2, 3]);
        assert_eq!(run.isolated_at(2), Some(1));
        assert_eq!(run.isolated_at(3), None);
        // The benign always-true counter 1 never forms a cluster.
        assert!(run.clusters().all(|c| c.counter != 1));
    }

    #[test]
    fn overlapping_run_joins_the_first_cluster_only() {
        let mut index = FailureIndex::new();
        index.begin(layout(3)).unwrap();
        index
            .accept(Report::new(0, Label::Failure, vec![1, 1, 0]))
            .unwrap();
        index
            .accept(Report::new(1, Label::Failure, vec![0, 1, 0]))
            .unwrap();
        index
            .accept(Report::new(2, Label::Success, vec![0, 0, 1]))
            .unwrap();
        let run = isolate(&index, &[], &Ochiai);
        // Counter 0 (ef=1) and counter 1 (ef=2) both score 1000 with
        // ep=0 under Ochiai... counter 1 covers both runs: isqrt is
        // exact here, so counter 1 wins outright and explains run 0 too.
        assert_eq!(run.iterations(), 1);
        assert_eq!(run.steps[0].cluster.counter, 1);
        assert_eq!(run.steps[0].cluster.trials, vec![0, 1]);
        assert!(run.is_complete());
    }

    #[test]
    fn unexplained_failures_survive_rather_than_force_fit() {
        let mut index = FailureIndex::new();
        index.begin(layout(2)).unwrap();
        // A failing run observing nothing: no predicate can explain it.
        index
            .accept(Report::new(0, Label::Failure, vec![0, 0]))
            .unwrap();
        index
            .accept(Report::new(1, Label::Failure, vec![1, 0]))
            .unwrap();
        index
            .accept(Report::new(2, Label::Success, vec![0, 1]))
            .unwrap();
        let run = isolate(&index, &[], &Ochiai);
        assert_eq!(run.iterations(), 1);
        assert_eq!(run.steps[0].cluster.trials, vec![1]);
        assert!(!run.is_complete());
        assert_eq!(run.unexplained, vec![0]);
    }

    #[test]
    fn every_scorer_drives_the_loop_to_the_same_disjoint_clusters() {
        let index = two_bug_index();
        for name in crate::score::SCORER_NAMES {
            let scorer = scorer_by_name(name).unwrap();
            let run = isolate(&index, &[(0, 2), (2, 2)], scorer);
            let counters: Vec<usize> = run.clusters().map(|c| c.counter).collect();
            assert!(
                counters.contains(&0) && counters.contains(&2),
                "{name} must isolate both planted predicates, got {counters:?}"
            );
            assert!(run.is_complete(), "{name} left failures unexplained");
        }
    }

    #[test]
    fn site_groups_feed_the_context_term() {
        let index = two_bug_index();
        let t = index.tables(&[(0, 2), (2, 2)]);
        // Site (0,2): counter 0 fires in 2 failing runs, counter 1 in
        // all 4 — the site is reached in all 4 failing and 5 successful
        // runs, shared by both members.
        assert_eq!((t[0].obs_f, t[0].obs_s), (4, 5));
        assert_eq!((t[1].obs_f, t[1].obs_s), (4, 5));
        // Site (2,2): reached in the 2 failing runs where counter 2
        // fires plus the single success where counter 3 does.
        assert_eq!((t[2].obs_f, t[2].obs_s), (2, 1));
    }
}
