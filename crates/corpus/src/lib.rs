//! Ground-truth fault-injection corpus and isolation-quality evaluation.
//!
//! The paper's evaluation rests on two hand-planted bugs (`ccrypt`'s
//! EOF-at-prompt crash, `bc`'s heap overrun).  That shows the pipeline
//! *works*; it cannot say how *well* elimination and ℓ₁-regularized
//! regression isolate bugs in general, or how isolation quality degrades
//! with sampling density.  This crate turns the question into a
//! measurement:
//!
//! 1. [`mutate`] — AST mutation operators over MiniC that plant exactly
//!    one labeled bug (off-by-one bounds, dropped bounds check, bad
//!    pointer offset, flipped comparison, wrong guard polarity) into a
//!    crash-free [`cbi_testgen`] program or into the `ccrypt`/`bc`
//!    workloads.  Every operator routes the faulty index through a fresh
//!    `fault_t` temporary, so the instrumented program contains exactly
//!    one bounds site whose predicate is the ground truth.
//! 2. [`manifest`] — a [`PlantedBug`] record per corpus entry: the
//!    mutated source, the true counter index and predicate name, the
//!    instrumentation layout hash pinning them, and how the bug triggers.
//! 3. [`generate`] — seeded corpus construction.  Each candidate
//!    mutation is validated by an instrumented density-1 campaign plus an
//!    uninstrumented baseline sweep before it is admitted, so every
//!    manifest line is a *demonstrated* bug, not a hoped-for one.
//! 4. [`eval`] — the scoring harness: per entry and sampling density it
//!    streams a campaign through [`cbi::StreamingAnalyzer`], then scores
//!    the analysis against ground truth — survival of the true predicate
//!    under §3.2 elimination, its rank in the regression ordering,
//!    recall@k, and a wasted-effort (EXAM-style) score.
//!
//! Everything is deterministic: corpus generation from a seed, trial
//! regeneration from the manifest, and evaluation output byte-for-byte
//! across runs and across `--jobs` settings (the campaign engine's
//! ordered merge guarantees an identical report stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod eval_multi;
pub mod generate;
pub mod manifest;
pub mod mutate;

pub use eval::{evaluate, render_report, render_summary, EntryScore, EvalConfig, EvalReport};
pub use eval_multi::{
    evaluate_multi, render_multi_report, render_multi_summary, BugOutcome, MultiEntryScore,
    MultiEvalConfig, MultiEvalReport,
};
pub use generate::{
    corpus_gen_config, generate_corpus, generate_multi_corpus, load_corpus, testgen_trials,
    write_corpus, Corpus, CorpusEntry, GenerateConfig, MultiGenerateConfig,
};
pub use manifest::{read_manifest, write_manifest, Fault, PlantedBug, Workload, MANIFEST_SCHEMA};
pub use mutate::{
    plant_testgen, plant_testgen_named, plant_workload, store_candidates, workload_candidates,
    Mutation, Operator, MULTI_FAULT_VARS,
};

use std::fmt;

/// Errors from corpus generation, loading, and evaluation.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem error reading or writing a corpus directory.
    Io(std::io::Error),
    /// A corpus program failed to parse.
    Parse {
        /// Entry id (or a description during generation).
        id: String,
        /// Parser diagnostic.
        message: String,
    },
    /// A corpus program failed to instrument.
    Instrument {
        /// Entry id.
        id: String,
        /// Instrumenter diagnostic.
        message: String,
    },
    /// A campaign over a corpus entry failed outright.
    Campaign {
        /// Entry id.
        id: String,
        /// Campaign diagnostic.
        message: String,
    },
    /// A manifest line could not be decoded.
    Manifest {
        /// 1-based line number in `manifest.jsonl`.
        line: usize,
        /// Decoder diagnostic.
        message: String,
    },
    /// Re-instrumenting an entry produced a different site-table layout
    /// than the manifest recorded — the ground-truth counter index can
    /// no longer be trusted.
    LayoutDrift {
        /// Entry id.
        id: String,
        /// Layout hash recorded in the manifest.
        expected: u64,
        /// Layout hash observed now.
        got: u64,
    },
    /// The true counter no longer names the predicate the manifest
    /// recorded.
    PredicateDrift {
        /// Entry id.
        id: String,
        /// Predicate recorded in the manifest.
        expected: String,
        /// Predicate observed now.
        got: String,
    },
    /// An evaluation configuration is invalid (e.g. an unknown scorer
    /// name).
    Config {
        /// What was wrong.
        message: String,
    },
    /// Generation could not validate enough planted bugs.
    Exhausted {
        /// Entries requested.
        wanted: usize,
        /// Entries validated before giving up.
        got: usize,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusError::Parse { id, message } => {
                write!(f, "corpus entry {id}: parse failed: {message}")
            }
            CorpusError::Instrument { id, message } => {
                write!(f, "corpus entry {id}: instrumentation failed: {message}")
            }
            CorpusError::Campaign { id, message } => {
                write!(f, "corpus entry {id}: campaign failed: {message}")
            }
            CorpusError::Manifest { line, message } => {
                write!(f, "manifest line {line}: {message}")
            }
            CorpusError::LayoutDrift { id, expected, got } => write!(
                f,
                "corpus entry {id}: instrumentation layout drifted \
                 (manifest {expected:#x}, observed {got:#x})"
            ),
            CorpusError::PredicateDrift { id, expected, got } => write!(
                f,
                "corpus entry {id}: true counter names {got:?}, manifest says {expected:?}"
            ),
            CorpusError::Config { message } => {
                write!(f, "evaluation config error: {message}")
            }
            CorpusError::Exhausted { wanted, got } => write!(
                f,
                "corpus generation exhausted: validated {got} of {wanted} requested entries"
            ),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}
