//! The isolation-quality evaluation harness.
//!
//! For each corpus entry and sampling density, the harness streams a
//! campaign through [`StreamingAnalyzer`] (the same engine the paper
//! pipeline uses) and scores the analysis against the manifest's ground
//! truth:
//!
//! * **survival** — does the true predicate survive the combined §3.2
//!   elimination (universal falsehood ∧ successful counterexample)?
//! * **rank** — the true counter's 0-based position in the streaming
//!   regression ordering (the paper's §3.3 ordering made streaming);
//! * **recall@k** — whether the truth lands in the top k;
//! * **wasted effort** — rank normalized by the counter count, an
//!   EXAM-style "fraction of predicates a developer would inspect before
//!   reaching the bug".
//!
//! Everything is replayed from the manifest: trials regenerate from the
//! recorded seed, the instrumentation layout is re-derived from the
//! stored source and cross-checked against the recorded layout hash, and
//! the campaign engine's ordered merge makes the report stream — and
//! therefore every score — identical at any `jobs` setting.

use crate::generate::{trials_for, CorpusEntry};
use crate::CorpusError;
use cbi::{StreamingAnalyzer, StreamingConfig};
use cbi_instrument::{instrument, Scheme};
use cbi_minic::parse;
use cbi_sampler::SamplingDensity;
use cbi_scoring::scorer_by_name;
use cbi_workloads::{run_campaign_into, CampaignConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Sampling densities to sweep, as `1/d` denominators (`1` = sample
    /// every crossing).
    pub densities: Vec<u64>,
    /// Campaign worker threads (scores are identical at any value).
    pub jobs: usize,
    /// Interpreter engine for every campaign (scores are identical on
    /// every engine; bytecode is the throughput default).
    pub engine: cbi_vm::Engine,
    /// Rank with a `cbi-scoring` measure (by registry name) instead of
    /// the streaming regression model.  Scorer rankings are pure
    /// integer, so rank and wasted-effort are bit-stable by
    /// construction.
    pub scorer: Option<String>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            densities: vec![1, 10, 100, 1000],
            jobs: 1,
            engine: cbi_vm::Engine::Bytecode,
            scorer: None,
        }
    }
}

/// Deterministic rank order for float-weighted rankings: magnitude
/// descending, ties broken by counter (site) index ascending.  The
/// regression model emits this order already, but evaluation re-sorts
/// so the reported rank and wasted-effort numbers cannot permute
/// between equal-scored predicates no matter which ranking source fed
/// them.
fn break_ties(ranking: &mut [(usize, f64)]) {
    ranking.sort_by(|a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .expect("ranking weights are finite")
            .then(a.0.cmp(&b.0))
    });
}

/// Scores for one corpus entry at one sampling density.
#[derive(Debug, Clone)]
pub struct EntryScore {
    /// Entry id.
    pub id: String,
    /// Mutation operator name.
    pub operator: String,
    /// Whether the entry is a deterministic bug.
    pub deterministic: bool,
    /// Density denominator (`1/density` sampling).
    pub density: u64,
    /// Reports analyzed.
    pub runs: usize,
    /// Failing runs among them.
    pub failures: usize,
    /// Trials dropped for exhausting the op budget.
    pub dropped: usize,
    /// Did the true predicate survive combined elimination?
    pub survived: bool,
    /// Total combined-elimination survivors.
    pub survivors: usize,
    /// 0-based rank of the true counter in the regression ordering.
    pub rank: usize,
    /// Counters in the layout (denominator for wasted effort).
    pub counters: usize,
    /// Regression weight of the true counter.
    pub weight: f64,
}

/// All scores from an evaluation sweep.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Entries evaluated.
    pub entries: usize,
    /// The density sweep, in evaluation order.
    pub densities: Vec<u64>,
    /// One score per entry × density, in manifest-then-density order.
    pub scores: Vec<EntryScore>,
}

/// Runs the evaluation sweep over `entries`.  Multi-fault entries are
/// scored against their primary fault here; cluster-level metrics live
/// in [`crate::eval_multi`].
pub fn evaluate(entries: &[CorpusEntry], cfg: &EvalConfig) -> Result<EvalReport, CorpusError> {
    let scorer = match &cfg.scorer {
        Some(name) => Some(scorer_by_name(name).ok_or_else(|| CorpusError::Config {
            message: format!("unknown scorer {name:?}"),
        })?),
        None => None,
    };
    let mut scores = Vec::with_capacity(entries.len() * cfg.densities.len());
    for entry in entries {
        let bug = &entry.bug;
        let program = parse(&entry.source).map_err(|e| CorpusError::Parse {
            id: bug.id.clone(),
            message: e.to_string(),
        })?;
        // Guard the ground truth: the layout derived from the stored
        // source must still be the layout the manifest recorded,
        // otherwise `true_counter` points at an arbitrary predicate.
        let instrumented =
            instrument(&program, Scheme::Checks).map_err(|e| CorpusError::Instrument {
                id: bug.id.clone(),
                message: e.to_string(),
            })?;
        let sites = &instrumented.sites;
        if sites.layout_hash() != bug.layout_hash || sites.total_counters() != bug.counters {
            return Err(CorpusError::LayoutDrift {
                id: bug.id.clone(),
                expected: bug.layout_hash,
                got: sites.layout_hash(),
            });
        }
        for fault in &bug.faults {
            let named = sites.predicate_name(fault.true_counter);
            if named != fault.true_predicate {
                return Err(CorpusError::PredicateDrift {
                    id: bug.id.clone(),
                    expected: fault.true_predicate.clone(),
                    got: named,
                });
            }
        }
        let truth = bug.primary();
        let trials = trials_for(bug);
        for &density in &cfg.densities {
            let config = CampaignConfig::sampled(Scheme::Checks, SamplingDensity::one_in(density))
                .with_jobs(cfg.jobs.max(1))
                .with_engine(cfg.engine);
            let mut analyzer = StreamingAnalyzer::new(StreamingConfig::default());
            let run =
                run_campaign_into(&program, &trials, &config, &mut analyzer).map_err(|e| {
                    CorpusError::Campaign {
                        id: bug.id.clone(),
                        message: e.to_string(),
                    }
                })?;
            let elim = analyzer.eliminate(&run.instrumented.sites);
            let ranking: Vec<(usize, f64)> = match scorer {
                // Scorer rankings arrive already ordered (score
                // descending, counter ascending) in pure integers;
                // re-sorting by magnitude would misplace negative
                // Increase scores.
                Some(s) => analyzer
                    .scored_ranking(&run.instrumented.sites, s)
                    .into_iter()
                    .map(|(c, score)| (c, score as f64 / 1000.0))
                    .collect(),
                None => {
                    let mut r = analyzer.ranking();
                    break_ties(&mut r);
                    r
                }
            };
            let rank = ranking
                .iter()
                .position(|&(c, _)| c == truth.true_counter)
                .expect("ranking is total over the counter layout");
            let weight = ranking[rank].1;
            scores.push(EntryScore {
                id: bug.id.clone(),
                operator: bug.operator_label(),
                deterministic: bug.deterministic(),
                density,
                runs: elim.runs,
                failures: elim.failures,
                dropped: run.dropped,
                survived: elim.combined.contains(&truth.true_counter),
                survivors: elim.combined.len(),
                rank,
                counters: bug.counters,
                weight,
            });
        }
    }
    Ok(EvalReport {
        entries: entries.len(),
        densities: cfg.densities.clone(),
        scores,
    })
}

/// Aggregate over one (operator, density) cell.
struct Cell {
    entries: usize,
    survived: usize,
    failures: usize,
    dropped: usize,
    rank_sum: usize,
    wasted_sum: f64,
    hit1: usize,
    hit5: usize,
    hit10: usize,
}

impl Cell {
    fn new() -> Self {
        Cell {
            entries: 0,
            survived: 0,
            failures: 0,
            dropped: 0,
            rank_sum: 0,
            wasted_sum: 0.0,
            hit1: 0,
            hit5: 0,
            hit10: 0,
        }
    }

    fn add(&mut self, s: &EntryScore) {
        self.entries += 1;
        self.survived += usize::from(s.survived);
        self.failures += s.failures;
        self.dropped += s.dropped;
        self.rank_sum += s.rank;
        self.wasted_sum += s.rank as f64 / s.counters.max(1) as f64;
        self.hit1 += usize::from(s.rank < 1);
        self.hit5 += usize::from(s.rank < 5);
        self.hit10 += usize::from(s.rank < 10);
    }
}

/// Groups scores by (operator, density), preserving first-seen operator
/// order and the sweep's density order.
fn aggregate(report: &EvalReport) -> (Vec<String>, BTreeMap<(usize, u64), Cell>) {
    let mut operators: Vec<String> = Vec::new();
    let mut cells: BTreeMap<(usize, u64), Cell> = BTreeMap::new();
    for s in &report.scores {
        let op_idx = match operators.iter().position(|o| o == &s.operator) {
            Some(i) => i,
            None => {
                operators.push(s.operator.clone());
                operators.len() - 1
            }
        };
        cells
            .entry((op_idx, s.density))
            .or_insert_with(Cell::new)
            .add(s);
    }
    (operators, cells)
}

/// Renders the full score report: one row per entry × density, then the
/// operator × density aggregate table.  Byte-identical across runs and
/// `jobs` settings.
pub fn render_report(report: &EvalReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus evaluation: {} entries x densities {:?} ({} scores)",
        report.entries,
        report.densities,
        report.scores.len()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<9} {:<22} {:>3} {:>8} {:>5} {:>5} {:>5} {:>9} {:>9} {:>6} {:>9}",
        "id",
        "operator",
        "det",
        "density",
        "runs",
        "fail",
        "drop",
        "survived",
        "survivors",
        "rank",
        "weight"
    );
    for s in &report.scores {
        let _ = writeln!(
            out,
            "{:<9} {:<22} {:>3} {:>8} {:>5} {:>5} {:>5} {:>9} {:>9} {:>6} {:>9.3}",
            s.id,
            s.operator,
            if s.deterministic { "yes" } else { "no" },
            format!("1/{}", s.density),
            s.runs,
            s.failures,
            s.dropped,
            if s.survived { "yes" } else { "no" },
            s.survivors,
            s.rank,
            s.weight
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "aggregate by operator x density");
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>7} {:>8} {:>9} {:>6} {:>6} {:>6} {:>7}",
        "operator", "density", "entries", "survival", "mean-rank", "r@1", "r@5", "r@10", "wasted"
    );
    let (operators, cells) = aggregate(report);
    for (op_idx, operator) in operators.iter().enumerate() {
        for &density in &report.densities {
            let Some(c) = cells.get(&(op_idx, density)) else {
                continue;
            };
            let n = c.entries.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>7} {:>8.3} {:>9.2} {:>6.3} {:>6.3} {:>6.3} {:>7.3}",
                operator,
                format!("1/{density}"),
                c.entries,
                c.survived as f64 / n,
                c.rank_sum as f64 / n,
                c.hit1 as f64 / n,
                c.hit5 as f64 / n,
                c.hit10 as f64 / n,
                c.wasted_sum / n
            );
        }
    }
    out
}

/// Renders the integer-only summary used for golden-file comparisons:
/// survival and failure counts come from the pure-counting elimination
/// path, with no floating-point formatting to drift.
pub fn render_summary(report: &EvalReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus summary: {} entries x densities {:?}",
        report.entries, report.densities
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>7} {:>8} {:>8} {:>7}",
        "operator", "density", "entries", "survived", "failures", "dropped"
    );
    let (operators, cells) = aggregate(report);
    let mut total_survived = 0usize;
    let mut total_scores = 0usize;
    for (op_idx, operator) in operators.iter().enumerate() {
        for &density in &report.densities {
            let Some(c) = cells.get(&(op_idx, density)) else {
                continue;
            };
            total_survived += c.survived;
            total_scores += c.entries;
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>7} {:>8} {:>8} {:>7}",
                operator,
                format!("1/{density}"),
                c.entries,
                c.survived,
                c.failures,
                c.dropped
            );
        }
    }
    let _ = writeln!(out, "survived {total_survived} of {total_scores} scores");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_corpus, GenerateConfig};

    fn small_corpus() -> Vec<CorpusEntry> {
        generate_corpus(&GenerateConfig {
            size: 4,
            seed: 5,
            trials: 24,
        })
        .unwrap()
        .entries
    }

    #[test]
    fn density_one_truth_survives_and_output_is_stable() {
        let entries = small_corpus();
        let cfg = EvalConfig {
            densities: vec![1, 100],
            jobs: 1,
            ..EvalConfig::default()
        };
        let a = evaluate(&entries, &cfg).unwrap();
        for s in a.scores.iter().filter(|s| s.density == 1) {
            assert!(
                s.survived,
                "{}: true predicate must survive at density 1",
                s.id
            );
        }
        let b = evaluate(&entries, &cfg).unwrap();
        assert_eq!(render_report(&a), render_report(&b));
        let par = evaluate(
            &entries,
            &EvalConfig {
                densities: vec![1, 100],
                jobs: 3,
                ..EvalConfig::default()
            },
        )
        .unwrap();
        assert_eq!(render_report(&a), render_report(&par));
        assert_eq!(render_summary(&a), render_summary(&par));
    }

    #[test]
    fn ties_break_by_site_index() {
        // Three predicates tie at magnitude 0.5 (one negatively); the
        // deterministic order is strictly by counter index among them.
        let mut r = vec![(3, 0.5), (0, -0.5), (2, 0.7), (1, 0.5)];
        break_ties(&mut r);
        let order: Vec<usize> = r.iter().map(|&(c, _)| c).collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn scorer_rankings_are_identical_at_any_jobs() {
        let entries = small_corpus();
        for scorer in ["ochiai", "tarantula"] {
            let reports: Vec<String> = [1, 2, 4]
                .into_iter()
                .map(|jobs| {
                    let report = evaluate(
                        &entries,
                        &EvalConfig {
                            densities: vec![1],
                            jobs,
                            scorer: Some(scorer.to_string()),
                            ..EvalConfig::default()
                        },
                    )
                    .unwrap();
                    render_report(&report)
                })
                .collect();
            assert_eq!(reports[0], reports[1], "{scorer}: jobs 1 vs 2");
            assert_eq!(reports[0], reports[2], "{scorer}: jobs 1 vs 4");
        }
    }

    #[test]
    fn unknown_scorer_is_a_config_error() {
        let err = evaluate(
            &[],
            &EvalConfig {
                scorer: Some("regress".to_string()),
                ..EvalConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CorpusError::Config { .. }), "{err}");
    }

    #[test]
    fn tampered_source_is_rejected() {
        let mut entries = small_corpus();
        // Appending a statement changes the layout: evaluation must
        // refuse rather than score against a stale counter index.
        let tampered = entries[0]
            .source
            .replace("return 0;", "check(1 == 1);\n    return 0;");
        assert_ne!(tampered, entries[0].source);
        entries[0].source = tampered;
        let err = evaluate(
            &entries,
            &EvalConfig {
                densities: vec![1],
                jobs: 1,
                ..EvalConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CorpusError::LayoutDrift { .. }),
            "unexpected error: {err}"
        );
    }
}
