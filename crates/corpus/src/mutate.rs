//! AST mutation operators that plant a single labeled bug.
//!
//! Every store-indexing operator rewrites a candidate `p[i] = v;` into
//!
//! ```text
//! fault_t = <mutated index>;
//! p[fault_t] = v;
//! ```
//!
//! (possibly behind a broken guard), with `int fault_t = 0;` declared at
//! the top of the enclosing function.  Routing the faulty index through
//! the fresh `fault_t` temporary is what makes the ground truth
//! *identifiable*: the `checks` instrumentation scheme synthesizes a
//! bounds site per pure-indexed store, so the mutated program contains
//! exactly one site whose subject reads `0 <= fault_t < len(p)` — its
//! violated counter is the true predicate, and its text is stable under
//! the pretty-print/re-parse normalization the corpus applies before
//! recording an entry.
//!
//! The loop operator instead widens the program's buffer-digest loop
//! bound (`lc0 < len` → `lc0 <= len`), turning the digest load's
//! existing bounds site into the ground truth.  That read of one cell
//! past the end lands in heap slack, so it never crashes an
//! *uninstrumented* run — the bug only surfaces when sampling happens to
//! observe the violation, which is exactly the non-deterministic regime
//! the paper's sparse-sampling story is about.

use cbi_minic::ast::{BinOp, Block, Expr, Program, Stmt, UnOp};
use cbi_minic::{pretty, Span};

/// Name of the temporary a single-bug mutation routes its faulty index
/// through.  Multi-bug planting gives each fault its own temporary from
/// [`MULTI_FAULT_VARS`] so every planted site stays distinguishable.
pub const FAULT_VAR: &str = "fault_t";

/// Fault temporaries for multi-bug entries, in planting order.
pub const MULTI_FAULT_VARS: &[&str] = &["fault_t", "fault_u", "fault_v"];

/// A fault-injection operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operator {
    /// Widen the index clamp from `% len` to `% (len + 1)`: the index is
    /// valid except when it lands exactly one past the end.
    OffByOneIndex,
    /// Drop the clamp entirely: the raw generated expression indexes the
    /// buffer.
    DroppedBoundsCheck,
    /// Keep the clamp but add a constant offset to the result.  An
    /// offset smaller than the buffer makes the bug input-conditioned;
    /// an offset of at least the buffer length fires on every execution
    /// of the store.
    BadPointerOffset(i64),
    /// Guard the store with `0 <= i && i > len` — the comparison is
    /// flipped from `<`, so the store runs exactly when it is unsafe.
    FlippedComparison,
    /// Guard the store with `!(0 <= i && i < len)` — the right bounds
    /// check with the wrong polarity.
    WrongGuardPolarity,
    /// Widen the digest loop bound from `<` to `<=`, reading one cell
    /// past the buffer on the final iteration.
    OffByOneLoop,
}

impl Operator {
    /// Manifest name of the operator.
    pub fn name(&self) -> String {
        match self {
            Operator::OffByOneIndex => "off_by_one_index".to_string(),
            Operator::DroppedBoundsCheck => "dropped_bounds_check".to_string(),
            Operator::BadPointerOffset(k) => format!("bad_pointer_offset_{k}"),
            Operator::FlippedComparison => "flipped_comparison".to_string(),
            Operator::WrongGuardPolarity => "wrong_guard_polarity".to_string(),
            Operator::OffByOneLoop => "off_by_one_loop".to_string(),
        }
    }

    /// Whether, on testgen programs, a violation implies the run fails
    /// even without instrumentation.  True for every store operator: an
    /// out-of-bounds store either corrupts heap slack (caught at
    /// `free(buf)`) or faults outright.  False for the loop operator,
    /// whose out-of-bounds *read* is absorbed by heap slack.
    pub fn deterministic(&self) -> bool {
        !matches!(self, Operator::OffByOneLoop)
    }
}

/// A planted bug: the mutated program plus what identifies the ground
/// truth in its instrumented form.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The mutated program (not yet normalized).
    pub program: Program,
    /// Subject text of the unique bounds site guarding the fault; its
    /// violated counter is the true predicate.
    pub site_text: String,
    /// Whether a violation deterministically fails the run without
    /// instrumentation (see [`Operator::deterministic`]).
    pub deterministic: bool,
}

fn sp() -> Span {
    Span::new(1, 1)
}

fn is_int(e: &Expr, v: i64) -> bool {
    matches!(e, Expr::Int { value, .. } if *value == v)
}

/// Matches the testgen index clamp `((e % len + len) % len)` and returns
/// the raw inner expression `e`.
fn clamp_inner(e: &Expr, len: i64) -> Option<&Expr> {
    let Expr::Binary {
        op: BinOp::Mod,
        lhs,
        rhs,
        ..
    } = e
    else {
        return None;
    };
    if !is_int(rhs, len) {
        return None;
    }
    let Expr::Binary {
        op: BinOp::Add,
        lhs: sum_lhs,
        rhs: sum_rhs,
        ..
    } = &**lhs
    else {
        return None;
    };
    if !is_int(sum_rhs, len) {
        return None;
    }
    match &**sum_lhs {
        Expr::Binary {
            op: BinOp::Mod,
            lhs: inner,
            rhs: inner_rhs,
            ..
        } if is_int(inner_rhs, len) => Some(inner),
        _ => None,
    }
}

/// `((e % len + len) % len)` — the generator's own index clamp.
fn clamp_expr(e: Expr, len: i64) -> Expr {
    let m = Expr::binary(BinOp::Mod, e, Expr::int(len));
    let plus = Expr::binary(BinOp::Add, m, Expr::int(len));
    Expr::binary(BinOp::Mod, plus, Expr::int(len))
}

fn expr_is_pure(e: &Expr) -> bool {
    match e {
        Expr::Int { .. } | Expr::Null { .. } | Expr::Var { .. } => true,
        Expr::Call { .. } => false,
        Expr::Load { ptr, index, .. } => expr_is_pure(ptr) && expr_is_pure(index),
        Expr::Unary { expr, .. } => expr_is_pure(expr),
        Expr::Binary { lhs, rhs, .. } => expr_is_pure(lhs) && expr_is_pure(rhs),
    }
}

fn assign_fault(var: &str, value: Expr, span: Span) -> Stmt {
    Stmt::Assign {
        name: var.to_string(),
        value,
        span,
    }
}

fn fault_store(var: &str, target: String, value: Expr, span: Span) -> Stmt {
    Stmt::Store {
        target,
        index: Expr::var(var),
        value,
        span,
    }
}

/// `0 <= <var> && <var> <cmp> len`
fn range_guard(var: &str, cmp: BinOp, len: i64) -> Expr {
    Expr::binary(
        BinOp::And,
        Expr::binary(BinOp::Le, Expr::int(0), Expr::var(var)),
        Expr::binary(cmp, Expr::var(var), Expr::int(len)),
    )
}

type StoreBuilder<'a> = dyn Fn(String, Expr, Expr, Span) -> Vec<Stmt> + 'a;

/// Walks `stmts` (recursing into `if`/`while` bodies), replacing the
/// statement at global candidate index `nth` with the builder's output.
fn rewrite_nth_store(
    stmts: &mut Vec<Stmt>,
    counter: &mut usize,
    nth: usize,
    is_candidate: &dyn Fn(&Expr) -> bool,
    build: &StoreBuilder,
) -> Option<String> {
    let mut i = 0;
    while i < stmts.len() {
        let matched = matches!(&stmts[i], Stmt::Store { index, .. } if is_candidate(index));
        if matched {
            if *counter == nth {
                let Stmt::Store {
                    target,
                    index,
                    value,
                    span,
                } = stmts.remove(i)
                else {
                    unreachable!("matched a non-store");
                };
                let replacement = build(target.clone(), index, value, span);
                for (j, s) in replacement.into_iter().enumerate() {
                    stmts.insert(i + j, s);
                }
                return Some(target);
            }
            *counter += 1;
            i += 1;
            continue;
        }
        let found = match &mut stmts[i] {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => rewrite_nth_store(&mut then_block.stmts, counter, nth, is_candidate, build)
                .or_else(|| {
                    else_block.as_mut().and_then(|b| {
                        rewrite_nth_store(&mut b.stmts, counter, nth, is_candidate, build)
                    })
                }),
            Stmt::While { body, .. } => {
                rewrite_nth_store(&mut body.stmts, counter, nth, is_candidate, build)
            }
            _ => None,
        };
        if found.is_some() {
            return found;
        }
        i += 1;
    }
    None
}

/// Counts candidate statements without mutating anything.
fn count_stores(block: &Block, is_candidate: &dyn Fn(&Expr) -> bool) -> usize {
    block
        .stmts
        .iter()
        .map(|s| match s {
            Stmt::Store { index, .. } if is_candidate(index) => 1,
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                count_stores(then_block, is_candidate)
                    + else_block
                        .as_ref()
                        .map_or(0, |b| count_stores(b, is_candidate))
            }
            Stmt::While { body, .. } => count_stores(body, is_candidate),
            _ => 0,
        })
        .sum()
}

/// Plants at the `nth` candidate store anywhere in the program and
/// declares the `var` temporary in the enclosing function.  Returns
/// the mutated program and the store's target pointer name.
fn plant_at_store(
    program: &Program,
    nth: usize,
    var: &str,
    is_candidate: &dyn Fn(&Expr) -> bool,
    build: &StoreBuilder,
) -> Option<(Program, String)> {
    let mut mutated = program.clone();
    let mut counter = 0usize;
    for function in &mut mutated.functions {
        if let Some(target) = rewrite_nth_store(
            &mut function.body.stmts,
            &mut counter,
            nth,
            is_candidate,
            build,
        ) {
            function.body.stmts.insert(
                0,
                Stmt::Decl {
                    ty: cbi_minic::ast::Type::Int,
                    name: var.to_string(),
                    init: Some(Expr::int(0)),
                    span: sp(),
                },
            );
            return Some((mutated, target));
        }
    }
    None
}

/// Conservative name-collision guard: refuses programs that already
/// mention the given fault temporary anywhere.
fn mentions_var(program: &Program, var: &str) -> bool {
    pretty(program).contains(var)
}

/// Number of testgen-clamped stores (`p[((e % len + len) % len)] = v;`)
/// available as mutation candidates.
pub fn store_candidates(program: &Program, buf_len: i64) -> usize {
    let is_candidate = |index: &Expr| clamp_inner(index, buf_len).is_some();
    program
        .functions
        .iter()
        .map(|f| count_stores(&f.body, &is_candidate))
        .sum()
}

/// Number of pure-indexed stores available as workload mutation
/// candidates (the same purity rule the instrumenter uses to decide
/// which stores get bounds sites).
pub fn workload_candidates(program: &Program) -> usize {
    let is_candidate = |index: &Expr| expr_is_pure(index);
    program
        .functions
        .iter()
        .map(|f| count_stores(&f.body, &is_candidate))
        .sum()
}

/// Plants `op` into a testgen program at its `nth` candidate store (the
/// candidate index is ignored by [`Operator::OffByOneLoop`], which has a
/// single target).  Returns `None` when no candidate matches or the
/// program already uses the fault temporary.
pub fn plant_testgen(
    program: &Program,
    op: &Operator,
    nth: usize,
    buf_len: i64,
) -> Option<Mutation> {
    plant_testgen_named(program, op, nth, buf_len, FAULT_VAR)
}

/// [`plant_testgen`] with an explicit fault-temporary name, so a
/// multi-bug generator can plant several faults into one program and
/// keep each planted bounds site distinguishable by its variable.
pub fn plant_testgen_named(
    program: &Program,
    op: &Operator,
    nth: usize,
    buf_len: i64,
    var: &str,
) -> Option<Mutation> {
    if mentions_var(program, var) {
        return None;
    }
    if matches!(op, Operator::OffByOneLoop) {
        return plant_loop(program, buf_len);
    }
    let is_candidate = |index: &Expr| clamp_inner(index, buf_len).is_some();
    let deterministic = op.deterministic();
    let op = op.clone();
    let fv = var.to_string();
    let build = move |target: String, index: Expr, value: Expr, span: Span| -> Vec<Stmt> {
        let inner = clamp_inner(&index, buf_len)
            .expect("candidate store must carry the clamp")
            .clone();
        match &op {
            Operator::OffByOneIndex => vec![
                assign_fault(&fv, clamp_expr(inner, buf_len + 1), span),
                fault_store(&fv, target, value, span),
            ],
            Operator::DroppedBoundsCheck => {
                vec![
                    assign_fault(&fv, inner, span),
                    fault_store(&fv, target, value, span),
                ]
            }
            Operator::BadPointerOffset(k) => vec![
                assign_fault(
                    &fv,
                    Expr::binary(BinOp::Add, clamp_expr(inner, buf_len), Expr::int(*k)),
                    span,
                ),
                fault_store(&fv, target, value, span),
            ],
            Operator::FlippedComparison => vec![
                assign_fault(&fv, inner, span),
                Stmt::If {
                    cond: range_guard(&fv, BinOp::Gt, buf_len),
                    then_block: Block::new(vec![fault_store(&fv, target, value, span)]),
                    else_block: None,
                    span,
                },
            ],
            Operator::WrongGuardPolarity => vec![
                assign_fault(&fv, inner, span),
                Stmt::If {
                    cond: Expr::Unary {
                        op: UnOp::Not,
                        expr: Box::new(range_guard(&fv, BinOp::Lt, buf_len)),
                        span,
                    },
                    then_block: Block::new(vec![fault_store(&fv, target, value, span)]),
                    else_block: None,
                    span,
                },
            ],
            Operator::OffByOneLoop => unreachable!("handled above"),
        }
    };
    let (program, target) = plant_at_store(program, nth, var, &is_candidate, &build)?;
    Some(Mutation {
        program,
        site_text: format!("0 <= {var} < len({target})"),
        deterministic,
    })
}

/// Does the block contain a load `ptr_name[counter_name]`?
fn block_loads(block: &Block, ptr_name: &str, counter_name: &str) -> bool {
    fn expr_loads(e: &Expr, p: &str, c: &str) -> bool {
        match e {
            Expr::Load { ptr, index, .. } => {
                let direct = matches!(&**ptr, Expr::Var { name, .. } if name == p)
                    && matches!(&**index, Expr::Var { name, .. } if name == c);
                direct || expr_loads(ptr, p, c) || expr_loads(index, p, c)
            }
            Expr::Call { args, .. } => args.iter().any(|a| expr_loads(a, p, c)),
            Expr::Unary { expr, .. } => expr_loads(expr, p, c),
            Expr::Binary { lhs, rhs, .. } => expr_loads(lhs, p, c) || expr_loads(rhs, p, c),
            _ => false,
        }
    }
    fn stmt_loads(s: &Stmt, p: &str, c: &str) -> bool {
        match s {
            Stmt::Decl { init, .. } => init.as_ref().is_some_and(|e| expr_loads(e, p, c)),
            Stmt::Assign { value, .. } => expr_loads(value, p, c),
            Stmt::Store { index, value, .. } => expr_loads(index, p, c) || expr_loads(value, p, c),
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                expr_loads(cond, p, c)
                    || block_loads(then_block, p, c)
                    || else_block.as_ref().is_some_and(|b| block_loads(b, p, c))
            }
            Stmt::While { cond, body, .. } => expr_loads(cond, p, c) || block_loads(body, p, c),
            Stmt::Return { value, .. } => value.as_ref().is_some_and(|e| expr_loads(e, p, c)),
            Stmt::Expr { expr, .. } => expr_loads(expr, p, c),
            Stmt::Check { cond, .. } => expr_loads(cond, p, c),
            _ => false,
        }
    }
    block
        .stmts
        .iter()
        .any(|s| stmt_loads(s, ptr_name, counter_name))
}

/// Widens the unique digest loop `while (c < buf_len) { … p[c] … }` to
/// `<=`.  The digest load's own bounds site becomes the ground truth.
fn plant_loop(program: &Program, buf_len: i64) -> Option<Mutation> {
    // First pass: find every matching loop and what it loads.
    fn digest_loops(block: &Block, buf_len: i64, found: &mut Vec<(String, String)>) {
        for s in &block.stmts {
            match s {
                Stmt::While { cond, body, .. } => {
                    if let Expr::Binary {
                        op: BinOp::Lt,
                        lhs,
                        rhs,
                        ..
                    } = cond
                    {
                        if let (Expr::Var { name, .. }, true) = (&**lhs, is_int(rhs, buf_len)) {
                            // The loop must actually read ptr[counter].
                            let ptrs: Vec<String> = ptr_names(body);
                            for p in ptrs {
                                if block_loads(body, &p, name) {
                                    found.push((name.clone(), p));
                                    break;
                                }
                            }
                        }
                    }
                    digest_loops(body, buf_len, found);
                }
                Stmt::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    digest_loops(then_block, buf_len, found);
                    if let Some(b) = else_block {
                        digest_loops(b, buf_len, found);
                    }
                }
                _ => {}
            }
        }
    }
    fn ptr_names(block: &Block) -> Vec<String> {
        // Testgen programs have one heap pointer; collect load targets.
        fn exprs(e: &Expr, out: &mut Vec<String>) {
            match e {
                Expr::Load { ptr, index, .. } => {
                    if let Expr::Var { name, .. } = &**ptr {
                        if !out.contains(name) {
                            out.push(name.clone());
                        }
                    }
                    exprs(ptr, out);
                    exprs(index, out);
                }
                Expr::Call { args, .. } => args.iter().for_each(|a| exprs(a, out)),
                Expr::Unary { expr, .. } => exprs(expr, out),
                Expr::Binary { lhs, rhs, .. } => {
                    exprs(lhs, out);
                    exprs(rhs, out);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        for s in &block.stmts {
            if let Stmt::Expr { expr, .. } = s {
                exprs(expr, &mut out);
            }
        }
        out
    }
    let mut found = Vec::new();
    for f in &program.functions {
        digest_loops(&f.body, buf_len, &mut found);
    }
    // The ground truth must be unambiguous: exactly one digest loop.
    if found.len() != 1 {
        return None;
    }
    let (counter_name, ptr_name) = found.remove(0);
    // Second pass: flip the unique loop's comparison in a clone.
    fn widen(block: &mut Block, counter: &str, buf_len: i64) -> bool {
        for s in &mut block.stmts {
            match s {
                Stmt::While { cond, body, .. } => {
                    if let Expr::Binary { op, lhs, rhs, .. } = cond {
                        if *op == BinOp::Lt
                            && matches!(&**lhs, Expr::Var { name, .. } if name == counter)
                            && is_int(rhs, buf_len)
                        {
                            *op = BinOp::Le;
                            return true;
                        }
                    }
                    if widen(body, counter, buf_len) {
                        return true;
                    }
                }
                Stmt::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    if widen(then_block, counter, buf_len) {
                        return true;
                    }
                    if let Some(b) = else_block {
                        if widen(b, counter, buf_len) {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }
    let mut mutated = program.clone();
    let mut done = false;
    for f in &mut mutated.functions {
        if widen(&mut f.body, &counter_name, buf_len) {
            done = true;
            break;
        }
    }
    if !done {
        return None;
    }
    Some(Mutation {
        program: mutated,
        site_text: format!("0 <= {counter_name} < len({ptr_name})"),
        deterministic: false,
    })
}

/// Plants a bad-pointer-offset bug into a workload program (`ccrypt`,
/// `bc`): the `nth` pure-indexed store has `offset` added to its index
/// via the fault temporary.  Violations are input-conditioned and not
/// guaranteed to crash uninstrumented runs, so the mutation is marked
/// non-deterministic; corpus validation decides empirically whether the
/// planted bug actually manifests.
pub fn plant_workload(program: &Program, nth: usize, offset: i64) -> Option<Mutation> {
    if mentions_var(program, FAULT_VAR) {
        return None;
    }
    let is_candidate = |index: &Expr| expr_is_pure(index);
    let build = move |target: String, index: Expr, value: Expr, span: Span| -> Vec<Stmt> {
        vec![
            assign_fault(
                FAULT_VAR,
                Expr::binary(BinOp::Add, index, Expr::int(offset)),
                span,
            ),
            fault_store(FAULT_VAR, target, value, span),
        ]
    };
    let (program, target) = plant_at_store(program, nth, FAULT_VAR, &is_candidate, &build)?;
    Some(Mutation {
        program,
        site_text: format!("0 <= {FAULT_VAR} < len({target})"),
        deterministic: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, resolve};
    use cbi_testgen::program_for_seed;

    fn seed_with_store() -> (u64, Program) {
        for seed in 0..64 {
            let p = program_for_seed(seed);
            if store_candidates(&p, 8) > 0 {
                return (seed, p);
            }
        }
        panic!("no seed in 0..64 generates a store");
    }

    #[test]
    fn store_operators_plant_and_resolve() {
        let (_, p) = seed_with_store();
        for op in [
            Operator::OffByOneIndex,
            Operator::DroppedBoundsCheck,
            Operator::BadPointerOffset(4),
            Operator::BadPointerOffset(8),
            Operator::FlippedComparison,
            Operator::WrongGuardPolarity,
        ] {
            let m = plant_testgen(&p, &op, 0, 8).expect("plant must succeed");
            assert_eq!(m.site_text, "0 <= fault_t < len(buf)");
            assert!(m.deterministic, "{op:?} is a deterministic store bug");
            let src = pretty(&m.program);
            assert!(src.contains(FAULT_VAR), "mutation must route via fault_t");
            let reparsed = parse(&src).expect("mutant must parse");
            resolve(&reparsed).expect("mutant must resolve");
            assert_ne!(src, pretty(&p), "mutation must change the program");
        }
    }

    #[test]
    fn loop_operator_widens_the_digest_loop() {
        let p = program_for_seed(0);
        let m = plant_testgen(&p, &Operator::OffByOneLoop, 0, 8).expect("digest loop exists");
        assert!(!m.deterministic, "slack read never crashes uninstrumented");
        assert_eq!(m.site_text, "0 <= lc0 < len(buf)");
        let src = pretty(&m.program);
        assert!(src.contains("lc0 <= 8"), "loop bound must widen: {src}");
        resolve(&parse(&src).unwrap()).expect("mutant must resolve");
    }

    #[test]
    fn candidate_indices_address_distinct_stores() {
        let mut seen = std::collections::HashSet::new();
        let (_, p) = seed_with_store();
        let n = store_candidates(&p, 8);
        for nth in 0..n {
            let m = plant_testgen(&p, &Operator::DroppedBoundsCheck, nth, 8).unwrap();
            assert!(
                seen.insert(pretty(&m.program)),
                "candidate {nth} duplicated"
            );
        }
        assert!(plant_testgen(&p, &Operator::DroppedBoundsCheck, n, 8).is_none());
    }

    #[test]
    fn workload_planting_targets_pure_stores() {
        let p = cbi_workloads::ccrypt_program();
        let n = workload_candidates(&p);
        assert!(n > 0, "ccrypt must expose pure-indexed stores");
        let m = plant_workload(&p, 0, 4).expect("plant must succeed");
        assert!(!m.deterministic);
        let src = pretty(&m.program);
        resolve(&parse(&src).unwrap()).expect("mutant must resolve");
        assert!(m.site_text.starts_with("0 <= fault_t < len("));
    }

    #[test]
    fn named_planting_stacks_distinct_faults_in_one_program() {
        // Find a program with at least two candidate stores.
        let p = (0..256)
            .map(program_for_seed)
            .find(|p| store_candidates(p, 8) >= 2)
            .expect("some seed in 0..256 generates two stores");
        let n = store_candidates(&p, 8);
        // Plant descending: the rewritten store leaves the candidate
        // list, so lower indices stay valid for the second plant.
        let m1 =
            plant_testgen_named(&p, &Operator::DroppedBoundsCheck, n - 1, 8, "fault_u").unwrap();
        assert_eq!(m1.site_text, "0 <= fault_u < len(buf)");
        assert_eq!(store_candidates(&m1.program, 8), n - 1);
        let m2 =
            plant_testgen_named(&m1.program, &Operator::OffByOneIndex, 0, 8, "fault_v").unwrap();
        assert_eq!(m2.site_text, "0 <= fault_v < len(buf)");
        let src = pretty(&m2.program);
        assert!(src.contains("fault_u") && src.contains("fault_v"));
        resolve(&parse(&src).unwrap()).expect("stacked mutant must resolve");
        // Re-planting an already-used temporary is refused.
        assert!(plant_testgen_named(&m2.program, &Operator::OffByOneIndex, 0, 8, "fault_u")
            .is_none());
    }

    #[test]
    fn planting_refuses_fault_var_collisions() {
        let p = parse(
            "fn main() -> int { int fault_t = 0; ptr b = alloc(8);
              b[((fault_t % 8 + 8) % 8)] = 1; free(b); return 0; }",
        )
        .unwrap();
        assert!(plant_testgen(&p, &Operator::DroppedBoundsCheck, 0, 8).is_none());
    }
}
