//! The `PlantedBug` ground-truth manifest and its versioned JSONL codec.
//!
//! One line per corpus entry, hand-rolled JSON in the same
//! zero-dependency style as the report codec: a tolerant scanner that
//! accepts any field order and insignificant whitespace, and an emitter
//! that always writes fields in a fixed order so manifests are
//! byte-stable across runs.
//!
//! Two schema versions coexist:
//!
//! * **v1** — one fault per entry, spelled as flat fields (`operator`,
//!   `deterministic`, `trigger`, `true_counter`, `true_predicate`) on
//!   the entry object.  Every manifest written before multi-bug corpora
//!   existed is v1, and single-fault entries still emit the identical
//!   bytes so existing goldens and diff-based tooling keep working.
//! * **v2** — adds `"schema":2` and moves the per-fault fields into a
//!   `"bugs"` array, one object per planted fault.  An entry with two
//!   or more faults always emits v2.
//!
//! The decoder accepts both shapes regardless of declared version and
//! rejects any `schema` beyond 2, so older readers fail loudly on
//! manifests from the future instead of silently dropping faults.

use crate::CorpusError;
use std::fmt;
use std::io::{BufRead, Write};

/// Latest manifest schema version this codec writes.
pub const MANIFEST_SCHEMA: u32 = 2;

/// Which workload family a corpus entry was planted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A seeded `cbi-testgen` program.
    Testgen,
    /// The `ccrypt` benchmark analogue (EOF prompts disabled, so the
    /// planted bug is the only crash source).
    Ccrypt,
    /// The `bc` benchmark analogue (its organic heap-overrun crashes
    /// remain active alongside the planted bug).
    Bc,
}

impl Workload {
    /// Manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Workload::Testgen => "testgen",
            Workload::Ccrypt => "ccrypt",
            Workload::Bc => "bc",
        }
    }

    /// Parses the manifest spelling.
    pub fn from_str_opt(s: &str) -> Option<Workload> {
        match s {
            "testgen" => Some(Workload::Testgen),
            "ccrypt" => Some(Workload::Ccrypt),
            "bc" => Some(Workload::Bc),
            _ => None,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ground truth for one planted fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Mutation operator name (see [`crate::Operator::name`]).
    pub operator: String,
    /// Whether a violation fails the run even without instrumentation.
    pub deterministic: bool,
    /// `"always"` if every validation trial failed, `"conditional"` if
    /// the fault depends on trial input.
    pub trigger: String,
    /// Counter index (in the `checks`-scheme layout) of the true
    /// predicate — the violated slot of the fault's bounds site.
    pub true_counter: usize,
    /// Human-readable name of the true predicate.
    pub true_predicate: String,
}

/// Ground truth for one corpus entry: shared program metadata plus one
/// or more planted faults.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedBug {
    /// Manifest schema version this entry round-trips as (1 or 2).
    pub schema: u32,
    /// Stable entry id (`tg-0007`, `mb-0003`, …); also names the source
    /// file.
    pub id: String,
    /// Workload family the faults were planted into.
    pub workload: Workload,
    /// Path of the mutated program, relative to the corpus directory.
    pub source: String,
    /// Site-table layout hash of the instrumented program, pinning
    /// every `true_counter` to a concrete layout.
    pub layout_hash: u64,
    /// Total counters in that layout.
    pub counters: usize,
    /// Trials per campaign (validation used these; evaluation replays
    /// them).
    pub trials: usize,
    /// Seed regenerating the trial inputs.
    pub trial_seed: u64,
    /// Failing runs among the uninstrumented baseline trials.
    pub baseline_failures: usize,
    /// The planted faults, in planting order.  Never empty; v1 entries
    /// have exactly one.
    pub faults: Vec<Fault>,
}

impl PlantedBug {
    /// The first planted fault — the only one for v1 entries.
    pub fn primary(&self) -> &Fault {
        &self.faults[0]
    }

    /// True when every planted fault crashes uninstrumented runs.
    pub fn deterministic(&self) -> bool {
        self.faults.iter().all(|f| f.deterministic)
    }

    /// `+`-joined operator names of all faults (`off_by_one_index`
    /// alone for v1 entries).
    pub fn operator_label(&self) -> String {
        self.faults
            .iter()
            .map(|f| f.operator.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Counter indices of every fault's true predicate, planting order.
    pub fn true_counters(&self) -> Vec<usize> {
        self.faults.iter().map(|f| f.true_counter).collect()
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn str_field(out: &mut String, key: &str, val: &str, comma: bool) {
    if comma {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, val);
    out.push('"');
}

impl Fault {
    fn emit_fields(&self, out: &mut String, comma_first: bool) {
        str_field(out, "operator", &self.operator, comma_first);
        out.push_str(&format!(",\"deterministic\":{}", self.deterministic));
        str_field(out, "trigger", &self.trigger, true);
        out.push_str(&format!(",\"true_counter\":{}", self.true_counter));
        str_field(out, "true_predicate", &self.true_predicate, true);
    }
}

impl PlantedBug {
    /// Encodes the record as a single JSON line (no trailing newline).
    /// Single-fault v1 entries emit the legacy flat field order,
    /// byte-identical to manifests written before schema versioning.
    pub fn to_json(&self) -> String {
        assert!(!self.faults.is_empty(), "entry without faults");
        let mut out = String::with_capacity(256);
        out.push('{');
        if self.schema == 1 && self.faults.len() == 1 {
            str_field(&mut out, "id", &self.id, false);
            str_field(&mut out, "workload", self.workload.as_str(), true);
            let f = self.primary();
            str_field(&mut out, "operator", &f.operator, true);
            str_field(&mut out, "source", &self.source, true);
            out.push_str(&format!(",\"deterministic\":{}", f.deterministic));
            str_field(&mut out, "trigger", &f.trigger, true);
            out.push_str(&format!(",\"true_counter\":{}", f.true_counter));
            str_field(&mut out, "true_predicate", &f.true_predicate, true);
        } else {
            out.push_str("\"schema\":2");
            str_field(&mut out, "id", &self.id, true);
            str_field(&mut out, "workload", self.workload.as_str(), true);
            str_field(&mut out, "source", &self.source, true);
        }
        out.push_str(&format!(",\"layout_hash\":{}", self.layout_hash));
        out.push_str(&format!(",\"counters\":{}", self.counters));
        out.push_str(&format!(",\"trials\":{}", self.trials));
        out.push_str(&format!(",\"trial_seed\":{}", self.trial_seed));
        out.push_str(&format!(
            ",\"baseline_failures\":{}",
            self.baseline_failures
        ));
        if !(self.schema == 1 && self.faults.len() == 1) {
            out.push_str(",\"bugs\":[");
            for (i, f) in self.faults.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                f.emit_fields(&mut out, false);
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Decodes one JSON line; field order and whitespace are free, and
    /// both the v1 flat shape and the v2 `bugs` array are accepted.
    pub fn from_json(line: &str) -> Result<PlantedBug, String> {
        let mut p = Scanner::new(line);
        let mut schema = None;
        let mut id = None;
        let mut workload = None;
        let mut source = None;
        let mut layout_hash = None;
        let mut counters = None;
        let mut trials = None;
        let mut trial_seed = None;
        let mut baseline_failures = None;
        let mut faults: Vec<Fault> = Vec::new();
        // v1 flat fault fields, collected as they appear.
        let mut operator = None;
        let mut deterministic = None;
        let mut trigger = None;
        let mut true_counter = None;
        let mut true_predicate = None;
        p.expect('{')?;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            match key.as_str() {
                "schema" => schema = Some(p.number()? as u32),
                "id" => id = Some(p.string()?),
                "workload" => {
                    let w = p.string()?;
                    workload =
                        Some(Workload::from_str_opt(&w).ok_or(format!("unknown workload {w:?}"))?);
                }
                "source" => source = Some(p.string()?),
                "layout_hash" => layout_hash = Some(p.number()?),
                "counters" => counters = Some(p.number()? as usize),
                "trials" => trials = Some(p.number()? as usize),
                "trial_seed" => trial_seed = Some(p.number()?),
                "baseline_failures" => baseline_failures = Some(p.number()? as usize),
                "bugs" => {
                    p.expect('[')?;
                    p.skip_ws();
                    if !p.eat(']') {
                        loop {
                            faults.push(parse_fault(&mut p)?);
                            p.skip_ws();
                            if !p.eat(',') {
                                p.expect(']')?;
                                break;
                            }
                        }
                    }
                }
                "operator" => operator = Some(p.string()?),
                "deterministic" => deterministic = Some(p.boolean()?),
                "trigger" => trigger = Some(p.string()?),
                "true_counter" => true_counter = Some(p.number()? as usize),
                "true_predicate" => true_predicate = Some(p.string()?),
                other => return Err(format!("unknown field {other:?}")),
            }
            p.skip_ws();
            if !p.eat(',') {
                p.expect('}')?;
                break;
            }
        }
        let req = |name: &str| format!("missing field {name:?}");
        let flat_present = operator.is_some()
            || deterministic.is_some()
            || trigger.is_some()
            || true_counter.is_some()
            || true_predicate.is_some();
        if flat_present && !faults.is_empty() {
            return Err("entry mixes v1 flat fault fields with a v2 \"bugs\" array".to_string());
        }
        if flat_present {
            faults.push(Fault {
                operator: operator.ok_or_else(|| req("operator"))?,
                deterministic: deterministic.ok_or_else(|| req("deterministic"))?,
                trigger: trigger.ok_or_else(|| req("trigger"))?,
                true_counter: true_counter.ok_or_else(|| req("true_counter"))?,
                true_predicate: true_predicate.ok_or_else(|| req("true_predicate"))?,
            });
        }
        if faults.is_empty() {
            return Err("entry has no faults (neither flat fields nor \"bugs\")".to_string());
        }
        let schema = schema.unwrap_or(if flat_present { 1 } else { 2 });
        if schema == 0 || schema > MANIFEST_SCHEMA {
            return Err(format!(
                "unsupported manifest schema {schema} (this reader understands 1..={MANIFEST_SCHEMA})"
            ));
        }
        Ok(PlantedBug {
            schema,
            id: id.ok_or_else(|| req("id"))?,
            workload: workload.ok_or_else(|| req("workload"))?,
            source: source.ok_or_else(|| req("source"))?,
            layout_hash: layout_hash.ok_or_else(|| req("layout_hash"))?,
            counters: counters.ok_or_else(|| req("counters"))?,
            trials: trials.ok_or_else(|| req("trials"))?,
            trial_seed: trial_seed.ok_or_else(|| req("trial_seed"))?,
            baseline_failures: baseline_failures.ok_or_else(|| req("baseline_failures"))?,
            faults,
        })
    }
}

/// Parses one fault object from a v2 `bugs` array.
fn parse_fault(p: &mut Scanner<'_>) -> Result<Fault, String> {
    let mut operator = None;
    let mut deterministic = None;
    let mut trigger = None;
    let mut true_counter = None;
    let mut true_predicate = None;
    p.expect('{')?;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "operator" => operator = Some(p.string()?),
            "deterministic" => deterministic = Some(p.boolean()?),
            "trigger" => trigger = Some(p.string()?),
            "true_counter" => true_counter = Some(p.number()? as usize),
            "true_predicate" => true_predicate = Some(p.string()?),
            other => return Err(format!("unknown fault field {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    let req = |name: &str| format!("missing fault field {name:?}");
    Ok(Fault {
        operator: operator.ok_or_else(|| req("operator"))?,
        deterministic: deterministic.ok_or_else(|| req("deterministic"))?,
        trigger: trigger.ok_or_else(|| req("trigger"))?,
        true_counter: true_counter.ok_or_else(|| req("true_counter"))?,
        true_predicate: true_predicate.ok_or_else(|| req("true_predicate"))?,
    })
}

/// Minimal JSON scanner over one manifest line.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape".to_string())?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unmodified.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(format!("expected boolean at byte {}", self.pos))
        }
    }
}

/// Writes a manifest, one JSON line per bug.
pub fn write_manifest<W: Write>(mut w: W, bugs: &[PlantedBug]) -> std::io::Result<()> {
    for bug in bugs {
        writeln!(w, "{}", bug.to_json())?;
    }
    Ok(())
}

/// Reads a manifest; blank lines are skipped.
pub fn read_manifest<R: BufRead>(r: R) -> Result<Vec<PlantedBug>, CorpusError> {
    let mut bugs = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        bugs.push(
            PlantedBug::from_json(&line).map_err(|message| CorpusError::Manifest {
                line: i + 1,
                message,
            })?,
        );
    }
    Ok(bugs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fault() -> Fault {
        Fault {
            operator: "off_by_one_index".to_string(),
            deterministic: true,
            trigger: "conditional".to_string(),
            true_counter: 12,
            true_predicate: "!(0 <= fault_t < len(buf))".to_string(),
        }
    }

    fn sample() -> PlantedBug {
        PlantedBug {
            schema: 1,
            id: "tg-0007".to_string(),
            workload: Workload::Testgen,
            source: "programs/tg-0007.mc".to_string(),
            layout_hash: u64::MAX - 3,
            counters: 40,
            trials: 48,
            trial_seed: 0xc0de,
            baseline_failures: 9,
            faults: vec![sample_fault()],
        }
    }

    fn sample_multi() -> PlantedBug {
        let mut second = sample_fault();
        second.operator = "dropped_bounds_check".to_string();
        second.deterministic = false;
        second.true_counter = 30;
        second.true_predicate = "!(0 <= fault_u < len(p))".to_string();
        PlantedBug {
            schema: 2,
            id: "mb-0001".to_string(),
            workload: Workload::Testgen,
            source: "programs/mb-0001.mc".to_string(),
            layout_hash: 77,
            counters: 64,
            trials: 96,
            trial_seed: 0xabad,
            baseline_failures: 11,
            faults: vec![sample_fault(), second],
        }
    }

    #[test]
    fn v1_json_round_trip() {
        let bug = sample();
        let line = bug.to_json();
        assert_eq!(PlantedBug::from_json(&line).unwrap(), bug);
    }

    /// A v1 entry emits the exact byte sequence the pre-versioning
    /// codec wrote — no `schema` field, flat fault fields in the legacy
    /// order — so old manifests and goldens diff clean.
    #[test]
    fn v1_emission_is_the_legacy_flat_format() {
        let line = sample().to_json();
        assert_eq!(
            line,
            "{\"id\":\"tg-0007\",\"workload\":\"testgen\",\
             \"operator\":\"off_by_one_index\",\"source\":\"programs/tg-0007.mc\",\
             \"deterministic\":true,\"trigger\":\"conditional\",\"true_counter\":12,\
             \"true_predicate\":\"!(0 <= fault_t < len(buf))\",\
             \"layout_hash\":18446744073709551612,\"counters\":40,\"trials\":48,\
             \"trial_seed\":49374,\"baseline_failures\":9}"
        );
    }

    #[test]
    fn v2_json_round_trip() {
        let bug = sample_multi();
        let line = bug.to_json();
        assert!(line.starts_with("{\"schema\":2,"));
        assert!(line.contains("\"bugs\":[{"));
        assert_eq!(PlantedBug::from_json(&line).unwrap(), bug);
    }

    #[test]
    fn v1_and_v2_lines_coexist_in_one_manifest() {
        let v1 = sample();
        let v2 = sample_multi();
        let mut buf = Vec::new();
        write_manifest(&mut buf, &[v1.clone(), v2.clone()]).unwrap();
        let back = read_manifest(&buf[..]).unwrap();
        assert_eq!(back, vec![v1, v2]);
    }

    #[test]
    fn field_order_and_whitespace_are_free() {
        let line = r#" { "trials" : 48 , "id":"x", "workload":"bc",
            "operator":"bad_pointer_offset_4","source":"programs/x.mc",
            "deterministic":false,"trigger":"conditional","true_counter":3,
            "true_predicate":"!(0 <= fault_t < len(p))","layout_hash":1,
            "counters":9,"trial_seed":2,"baseline_failures":0 } "#
            .replace('\n', " ");
        let bug = PlantedBug::from_json(&line).unwrap();
        assert_eq!(bug.workload, Workload::Bc);
        assert_eq!(bug.trials, 48);
        assert_eq!(bug.schema, 1);
        assert_eq!(bug.primary().true_counter, 3);
    }

    #[test]
    fn accessors_summarize_the_fault_list() {
        let multi = sample_multi();
        assert_eq!(multi.primary().true_counter, 12);
        assert!(!multi.deterministic(), "one fault is non-deterministic");
        assert_eq!(
            multi.operator_label(),
            "off_by_one_index+dropped_bounds_check"
        );
        assert_eq!(multi.true_counters(), vec![12, 30]);
        assert!(sample().deterministic());
    }

    #[test]
    fn manifest_round_trip_preserves_order() {
        let mut a = sample();
        let mut b = sample();
        b.id = "cc-0000".to_string();
        b.workload = Workload::Ccrypt;
        a.faults[0].true_predicate = "weird \"quoted\" \\ name".to_string();
        let mut buf = Vec::new();
        write_manifest(&mut buf, &[a.clone(), b.clone()]).unwrap();
        let back = read_manifest(&buf[..]).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = format!("{}\n{{\"id\":}}\n", sample().to_json());
        let err = read_manifest(text.as_bytes()).unwrap_err();
        match err {
            CorpusError::Manifest { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn future_schema_is_rejected() {
        let line = sample_multi().to_json().replace("\"schema\":2", "\"schema\":3");
        let err = PlantedBug::from_json(&line).unwrap_err();
        assert!(err.contains("unsupported manifest schema 3"), "{err}");
    }

    #[test]
    fn mixed_flat_and_array_faults_are_rejected() {
        let line = sample_multi()
            .to_json()
            .replacen("\"id\"", "\"operator\":\"x\",\"id\"", 1);
        let err = PlantedBug::from_json(&line).unwrap_err();
        assert!(err.contains("mixes v1"), "{err}");
    }

    #[test]
    fn entry_without_faults_is_rejected() {
        let err = PlantedBug::from_json(
            "{\"schema\":2,\"id\":\"x\",\"workload\":\"testgen\",\"source\":\"s\",\
             \"layout_hash\":1,\"counters\":2,\"trials\":3,\"trial_seed\":4,\
             \"baseline_failures\":0,\"bugs\":[]}",
        )
        .unwrap_err();
        assert!(err.contains("no faults"), "{err}");
    }
}
