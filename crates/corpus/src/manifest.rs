//! The `PlantedBug` ground-truth manifest and its JSONL codec.
//!
//! One line per corpus entry, hand-rolled JSON in the same
//! zero-dependency style as the report codec: a tolerant scanner that
//! accepts any field order and insignificant whitespace, and an emitter
//! that always writes fields in a fixed order so manifests are
//! byte-stable across runs.

use crate::CorpusError;
use std::fmt;
use std::io::{BufRead, Write};

/// Which workload family a corpus entry was planted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A seeded `cbi-testgen` program.
    Testgen,
    /// The `ccrypt` benchmark analogue (EOF prompts disabled, so the
    /// planted bug is the only crash source).
    Ccrypt,
    /// The `bc` benchmark analogue (its organic heap-overrun crashes
    /// remain active alongside the planted bug).
    Bc,
}

impl Workload {
    /// Manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Workload::Testgen => "testgen",
            Workload::Ccrypt => "ccrypt",
            Workload::Bc => "bc",
        }
    }

    /// Parses the manifest spelling.
    pub fn from_str_opt(s: &str) -> Option<Workload> {
        match s {
            "testgen" => Some(Workload::Testgen),
            "ccrypt" => Some(Workload::Ccrypt),
            "bc" => Some(Workload::Bc),
            _ => None,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ground truth for one corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedBug {
    /// Stable entry id (`tg-0007`, `cc-0001`, …); also names the source
    /// file.
    pub id: String,
    /// Workload family the bug was planted into.
    pub workload: Workload,
    /// Mutation operator name (see [`crate::Operator::name`]).
    pub operator: String,
    /// Path of the mutated program, relative to the corpus directory.
    pub source: String,
    /// Whether a violation fails the run even without instrumentation.
    pub deterministic: bool,
    /// `"always"` if every validation trial failed, `"conditional"` if
    /// the bug depends on trial input.
    pub trigger: String,
    /// Counter index (in the `checks`-scheme layout) of the true
    /// predicate — the violated slot of the fault's bounds site.
    pub true_counter: usize,
    /// Human-readable name of the true predicate.
    pub true_predicate: String,
    /// Site-table layout hash of the instrumented program, pinning
    /// `true_counter` to a concrete layout.
    pub layout_hash: u64,
    /// Total counters in that layout.
    pub counters: usize,
    /// Trials per campaign (validation used these; evaluation replays
    /// them).
    pub trials: usize,
    /// Seed regenerating the trial inputs.
    pub trial_seed: u64,
    /// Failing runs among the uninstrumented baseline trials.
    pub baseline_failures: usize,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl PlantedBug {
    /// Encodes the record as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let str_field = |out: &mut String, key: &str, val: &str, comma: bool| {
            if comma {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":\"");
            escape_into(out, val);
            out.push('"');
        };
        out.push('{');
        str_field(&mut out, "id", &self.id, false);
        str_field(&mut out, "workload", self.workload.as_str(), true);
        str_field(&mut out, "operator", &self.operator, true);
        str_field(&mut out, "source", &self.source, true);
        out.push_str(&format!(",\"deterministic\":{}", self.deterministic));
        str_field(&mut out, "trigger", &self.trigger, true);
        out.push_str(&format!(",\"true_counter\":{}", self.true_counter));
        str_field(&mut out, "true_predicate", &self.true_predicate, true);
        out.push_str(&format!(",\"layout_hash\":{}", self.layout_hash));
        out.push_str(&format!(",\"counters\":{}", self.counters));
        out.push_str(&format!(",\"trials\":{}", self.trials));
        out.push_str(&format!(",\"trial_seed\":{}", self.trial_seed));
        out.push_str(&format!(
            ",\"baseline_failures\":{}",
            self.baseline_failures
        ));
        out.push('}');
        out
    }

    /// Decodes one JSON line; field order and whitespace are free.
    pub fn from_json(line: &str) -> Result<PlantedBug, String> {
        let mut p = Scanner::new(line);
        let mut id = None;
        let mut workload = None;
        let mut operator = None;
        let mut source = None;
        let mut deterministic = None;
        let mut trigger = None;
        let mut true_counter = None;
        let mut true_predicate = None;
        let mut layout_hash = None;
        let mut counters = None;
        let mut trials = None;
        let mut trial_seed = None;
        let mut baseline_failures = None;
        p.expect('{')?;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            match key.as_str() {
                "id" => id = Some(p.string()?),
                "workload" => {
                    let w = p.string()?;
                    workload =
                        Some(Workload::from_str_opt(&w).ok_or(format!("unknown workload {w:?}"))?);
                }
                "operator" => operator = Some(p.string()?),
                "source" => source = Some(p.string()?),
                "deterministic" => deterministic = Some(p.boolean()?),
                "trigger" => trigger = Some(p.string()?),
                "true_counter" => true_counter = Some(p.number()? as usize),
                "true_predicate" => true_predicate = Some(p.string()?),
                "layout_hash" => layout_hash = Some(p.number()?),
                "counters" => counters = Some(p.number()? as usize),
                "trials" => trials = Some(p.number()? as usize),
                "trial_seed" => trial_seed = Some(p.number()?),
                "baseline_failures" => baseline_failures = Some(p.number()? as usize),
                other => return Err(format!("unknown field {other:?}")),
            }
            p.skip_ws();
            if !p.eat(',') {
                p.expect('}')?;
                break;
            }
        }
        let req = |name: &str| format!("missing field {name:?}");
        Ok(PlantedBug {
            id: id.ok_or_else(|| req("id"))?,
            workload: workload.ok_or_else(|| req("workload"))?,
            operator: operator.ok_or_else(|| req("operator"))?,
            source: source.ok_or_else(|| req("source"))?,
            deterministic: deterministic.ok_or_else(|| req("deterministic"))?,
            trigger: trigger.ok_or_else(|| req("trigger"))?,
            true_counter: true_counter.ok_or_else(|| req("true_counter"))?,
            true_predicate: true_predicate.ok_or_else(|| req("true_predicate"))?,
            layout_hash: layout_hash.ok_or_else(|| req("layout_hash"))?,
            counters: counters.ok_or_else(|| req("counters"))?,
            trials: trials.ok_or_else(|| req("trials"))?,
            trial_seed: trial_seed.ok_or_else(|| req("trial_seed"))?,
            baseline_failures: baseline_failures.ok_or_else(|| req("baseline_failures"))?,
        })
    }
}

/// Minimal JSON scanner over one manifest line.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape".to_string())?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unmodified.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(format!("expected boolean at byte {}", self.pos))
        }
    }
}

/// Writes a manifest, one JSON line per bug.
pub fn write_manifest<W: Write>(mut w: W, bugs: &[PlantedBug]) -> std::io::Result<()> {
    for bug in bugs {
        writeln!(w, "{}", bug.to_json())?;
    }
    Ok(())
}

/// Reads a manifest; blank lines are skipped.
pub fn read_manifest<R: BufRead>(r: R) -> Result<Vec<PlantedBug>, CorpusError> {
    let mut bugs = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        bugs.push(
            PlantedBug::from_json(&line).map_err(|message| CorpusError::Manifest {
                line: i + 1,
                message,
            })?,
        );
    }
    Ok(bugs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlantedBug {
        PlantedBug {
            id: "tg-0007".to_string(),
            workload: Workload::Testgen,
            operator: "off_by_one_index".to_string(),
            source: "programs/tg-0007.mc".to_string(),
            deterministic: true,
            trigger: "conditional".to_string(),
            true_counter: 12,
            true_predicate: "!(0 <= fault_t < len(buf))".to_string(),
            layout_hash: u64::MAX - 3,
            counters: 40,
            trials: 48,
            trial_seed: 0xc0de,
            baseline_failures: 9,
        }
    }

    #[test]
    fn json_round_trip() {
        let bug = sample();
        let line = bug.to_json();
        assert_eq!(PlantedBug::from_json(&line).unwrap(), bug);
    }

    #[test]
    fn field_order_and_whitespace_are_free() {
        let line = r#" { "trials" : 48 , "id":"x", "workload":"bc",
            "operator":"bad_pointer_offset_4","source":"programs/x.mc",
            "deterministic":false,"trigger":"conditional","true_counter":3,
            "true_predicate":"!(0 <= fault_t < len(p))","layout_hash":1,
            "counters":9,"trial_seed":2,"baseline_failures":0 } "#
            .replace('\n', " ");
        let bug = PlantedBug::from_json(&line).unwrap();
        assert_eq!(bug.workload, Workload::Bc);
        assert_eq!(bug.trials, 48);
    }

    #[test]
    fn manifest_round_trip_preserves_order() {
        let mut a = sample();
        let mut b = sample();
        b.id = "cc-0000".to_string();
        b.workload = Workload::Ccrypt;
        a.true_predicate = "weird \"quoted\" \\ name".to_string();
        let mut buf = Vec::new();
        write_manifest(&mut buf, &[a.clone(), b.clone()]).unwrap();
        let back = read_manifest(&buf[..]).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = format!("{}\n{{\"id\":}}\n", sample().to_json());
        let err = read_manifest(text.as_bytes()).unwrap_err();
        match err {
            CorpusError::Manifest { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
