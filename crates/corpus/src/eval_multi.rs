//! Multi-bug isolation evaluation: cluster purity, per-bug rank, and
//! iterations-to-isolation against planted ground truth.
//!
//! For each v2 corpus entry, scorer, and sampling density the harness
//! streams a campaign into a [`FailureIndex`] and runs the §3.3
//! isolation loop, then scores the emitted clusters against the
//! manifest's fault list:
//!
//! * **cluster purity** — each cluster is matched to the planted bug
//!   owning the plurality of its runs (ties toward the earlier fault);
//!   purity is the matched fraction in per-mille, and the entry purity
//!   is the run-weighted mean over clusters.
//! * **per-bug first rank** — the 0-based position of each fault's true
//!   predicate in the pre-isolation whole-corpus ranking, measuring how
//!   badly the bugs shadow each other before elimination starts.
//! * **iterations-to-isolation** — the iteration at which the loop
//!   chose the fault's own predicate, if it ever did.
//!
//! Ground-truth run attribution comes from a density-1 replay: with the
//! `checks` scheme at density 1 a violated check aborts the run on the
//! spot, so every failing run observes exactly one planted counter —
//! the fault that killed it.  Planted faults are deterministic store
//! bugs (validated `baseline == failures`), so the same trials fail at
//! every density and the attribution carries across the sweep.
//!
//! Every metric is an integer (per-mille purity, ranks, iteration
//! counts), so summaries are byte-identical across runs, `--jobs`
//! settings, and platforms.

use crate::generate::{trials_for, CorpusEntry};
use crate::CorpusError;
use cbi_instrument::{instrument, Scheme, SiteTable};
use cbi_minic::parse;
use cbi_sampler::SamplingDensity;
use cbi_scoring::{isolate, rank_of, scorer_by_name, FailureIndex, IsolationRun, Scorer};
use cbi_workloads::{run_campaign_into, CampaignConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Multi-bug evaluation knobs.
#[derive(Debug, Clone)]
pub struct MultiEvalConfig {
    /// Sampling densities to sweep (`1/d` denominators).
    pub densities: Vec<u64>,
    /// Scorer registry names to drive the isolation loop with.
    pub scorers: Vec<String>,
    /// Campaign worker threads (metrics are identical at any value).
    pub jobs: usize,
    /// Interpreter engine for every campaign.
    pub engine: cbi_vm::Engine,
}

impl Default for MultiEvalConfig {
    fn default() -> Self {
        MultiEvalConfig {
            densities: vec![1, 10, 100],
            scorers: vec!["ochiai".to_string(), "importance".to_string()],
            jobs: 1,
            engine: cbi_vm::Engine::Bytecode,
        }
    }
}

/// Isolation outcome for one planted fault.
#[derive(Debug, Clone)]
pub struct BugOutcome {
    /// Mutation operator of the fault.
    pub operator: String,
    /// The fault's true counter.
    pub true_counter: usize,
    /// 0-based rank of the true predicate in the pre-isolation ranking.
    pub first_rank: usize,
    /// Iteration at which the loop chose this fault's predicate, if it
    /// ever did.
    pub isolated_at: Option<usize>,
    /// Whether some cluster's plurality of runs belongs to this fault.
    pub recovered: bool,
}

/// Metrics for one entry × scorer × density.
#[derive(Debug, Clone)]
pub struct MultiEntryScore {
    /// Entry id.
    pub id: String,
    /// Scorer registry name.
    pub scorer: String,
    /// Density denominator.
    pub density: u64,
    /// Planted faults in the entry.
    pub bugs: usize,
    /// Failing runs the index retained.
    pub failures: u64,
    /// Successful runs folded into aggregates.
    pub successes: u64,
    /// Iterations the isolation loop executed.
    pub iterations: usize,
    /// Failing runs no cluster explained.
    pub unexplained: usize,
    /// Run-weighted mean cluster purity, per-mille (1000 = every
    /// cluster pure).  0 when no cluster formed.
    pub purity_mille: u64,
    /// Per-fault outcomes, in manifest fault order.
    pub outcomes: Vec<BugOutcome>,
}

impl MultiEntryScore {
    /// Faults recovered as the plurality owner of some cluster.
    pub fn recovered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.recovered).count()
    }

    /// Sum of per-fault first ranks (integer stand-in for mean rank).
    pub fn rank_sum(&self) -> usize {
        self.outcomes.iter().map(|o| o.first_rank).sum()
    }
}

/// All metrics from a multi-bug evaluation sweep.
#[derive(Debug, Clone)]
pub struct MultiEvalReport {
    /// Entries evaluated.
    pub entries: usize,
    /// The density sweep.
    pub densities: Vec<u64>,
    /// The scorer sweep.
    pub scorers: Vec<String>,
    /// One score per entry × scorer × density.
    pub scores: Vec<MultiEntryScore>,
}

/// Site layout as `(counter_base, arity)` groups.
fn site_groups(sites: &SiteTable) -> Vec<(usize, usize)> {
    sites
        .iter()
        .map(|s| (s.counter_base, s.kind.arity()))
        .collect()
}

/// Scores one isolation trace against the entry's fault list.
/// `attribution` maps failing trial id → fault index.
fn score_run(
    entry: &CorpusEntry,
    scorer_name: &str,
    density: u64,
    index: &FailureIndex,
    run: &IsolationRun,
    attribution: &BTreeMap<u64, usize>,
) -> MultiEntryScore {
    let bug = &entry.bug;
    let n_bugs = bug.faults.len();
    // Match each cluster to the fault owning the plurality of its runs.
    let mut matched_overlap = 0u64;
    let mut total_clustered = 0u64;
    let mut plurality_of: Vec<Option<usize>> = Vec::new();
    for cluster in run.clusters() {
        let mut per_bug = vec![0u64; n_bugs];
        for trial in &cluster.trials {
            if let Some(&b) = attribution.get(trial) {
                per_bug[b] += 1;
            }
        }
        let winner = (0..n_bugs).max_by_key(|&b| (per_bug[b], n_bugs - b));
        let winner = winner.filter(|&b| per_bug[b] > 0);
        if let Some(b) = winner {
            matched_overlap += per_bug[b];
        }
        total_clustered += cluster.trials.len() as u64;
        plurality_of.push(winner);
    }
    let purity_mille = if total_clustered == 0 {
        0
    } else {
        matched_overlap * 1000 / total_clustered
    };
    let outcomes = bug
        .faults
        .iter()
        .enumerate()
        .map(|(b, fault)| BugOutcome {
            operator: fault.operator.clone(),
            true_counter: fault.true_counter,
            first_rank: rank_of(&run.initial_ranking, fault.true_counter)
                .expect("ranking is total over the layout"),
            isolated_at: run.isolated_at(fault.true_counter),
            recovered: plurality_of.iter().any(|&p| p == Some(b)),
        })
        .collect();
    MultiEntryScore {
        id: bug.id.clone(),
        scorer: scorer_name.to_string(),
        density,
        bugs: n_bugs,
        failures: index.failure_runs(),
        successes: index.success_runs(),
        iterations: run.iterations(),
        unexplained: run.unexplained.len(),
        purity_mille,
        outcomes,
    }
}

/// Runs the multi-bug evaluation sweep over `entries`.
pub fn evaluate_multi(
    entries: &[CorpusEntry],
    cfg: &MultiEvalConfig,
) -> Result<MultiEvalReport, CorpusError> {
    let scorers: Vec<(&str, &'static dyn Scorer)> = cfg
        .scorers
        .iter()
        .map(|name| {
            scorer_by_name(name)
                .map(|s| (name.as_str(), s))
                .ok_or_else(|| CorpusError::Config {
                    message: format!("unknown scorer {name:?}"),
                })
        })
        .collect::<Result<_, _>>()?;
    let mut scores = Vec::new();
    for entry in entries {
        let bug = &entry.bug;
        let program = parse(&entry.source).map_err(|e| CorpusError::Parse {
            id: bug.id.clone(),
            message: e.to_string(),
        })?;
        let instrumented =
            instrument(&program, Scheme::Checks).map_err(|e| CorpusError::Instrument {
                id: bug.id.clone(),
                message: e.to_string(),
            })?;
        let sites = &instrumented.sites;
        if sites.layout_hash() != bug.layout_hash || sites.total_counters() != bug.counters {
            return Err(CorpusError::LayoutDrift {
                id: bug.id.clone(),
                expected: bug.layout_hash,
                got: sites.layout_hash(),
            });
        }
        for fault in &bug.faults {
            let named = sites.predicate_name(fault.true_counter);
            if named != fault.true_predicate {
                return Err(CorpusError::PredicateDrift {
                    id: bug.id.clone(),
                    expected: fault.true_predicate.clone(),
                    got: named,
                });
            }
        }
        let groups = site_groups(sites);
        let trials = trials_for(bug);
        // Ground-truth attribution from a density-1 replay: each
        // failing run observes exactly one planted counter (the
        // violated check aborts the run before another can fire).
        let attribution = {
            let config = CampaignConfig::sampled(Scheme::Checks, SamplingDensity::one_in(1))
                .with_jobs(cfg.jobs.max(1))
                .with_engine(cfg.engine);
            let mut index = FailureIndex::new();
            run_campaign_into(&program, &trials, &config, &mut index).map_err(|e| {
                CorpusError::Campaign {
                    id: bug.id.clone(),
                    message: e.to_string(),
                }
            })?;
            let mut map = BTreeMap::new();
            for failing in index.failures() {
                let owners: Vec<usize> = bug
                    .faults
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| failing.nonzero.contains(&(f.true_counter as u32)))
                    .map(|(b, _)| b)
                    .collect();
                if let [only] = owners[..] {
                    map.insert(failing.trial, only);
                }
            }
            map
        };
        for &density in &cfg.densities {
            let config = CampaignConfig::sampled(Scheme::Checks, SamplingDensity::one_in(density))
                .with_jobs(cfg.jobs.max(1))
                .with_engine(cfg.engine);
            let mut index = FailureIndex::new();
            run_campaign_into(&program, &trials, &config, &mut index).map_err(|e| {
                CorpusError::Campaign {
                    id: bug.id.clone(),
                    message: e.to_string(),
                }
            })?;
            for &(name, scorer) in &scorers {
                let run = isolate(&index, &groups, scorer);
                scores.push(score_run(entry, name, density, &index, &run, &attribution));
            }
        }
    }
    Ok(MultiEvalReport {
        entries: entries.len(),
        densities: cfg.densities.clone(),
        scorers: cfg.scorers.clone(),
        scores,
    })
}

/// Aggregate over one (scorer, density) cell.
#[derive(Default)]
struct Cell {
    entries: usize,
    bugs: usize,
    recovered: usize,
    purity_weighted: u64,
    clustered_runs: u64,
    iterations: usize,
    unexplained: usize,
    rank_sum: usize,
}

fn aggregate(report: &MultiEvalReport) -> BTreeMap<(usize, u64), Cell> {
    let mut cells: BTreeMap<(usize, u64), Cell> = BTreeMap::new();
    for s in &report.scores {
        let scorer_idx = report
            .scorers
            .iter()
            .position(|n| *n == s.scorer)
            .expect("score names a configured scorer");
        let cell = cells.entry((scorer_idx, s.density)).or_default();
        cell.entries += 1;
        cell.bugs += s.bugs;
        cell.recovered += s.recovered();
        // Re-weight entry purity by its clustered-run count so the cell
        // purity is the run-weighted mean, still in integers.
        let clustered: u64 = s.failures - s.unexplained as u64;
        cell.purity_weighted += s.purity_mille * clustered;
        cell.clustered_runs += clustered;
        cell.iterations += s.iterations;
        cell.unexplained += s.unexplained;
        cell.rank_sum += s.rank_sum();
    }
    cells
}

/// Renders the per-entry trace plus the scorer × density aggregate, all
/// integer columns.
pub fn render_multi_report(report: &MultiEvalReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "multi-bug evaluation: {} entries x densities {:?} x scorers {:?}",
        report.entries, report.densities, report.scorers
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<9} {:<11} {:>8} {:>4} {:>5} {:>5} {:>6} {:>7} {:>7} {:>9} {:>8}",
        "id",
        "scorer",
        "density",
        "bugs",
        "fail",
        "iter",
        "unexpl",
        "purity",
        "recov",
        "ranksum",
        "isolated"
    );
    for s in &report.scores {
        let isolated = s.outcomes.iter().filter(|o| o.isolated_at.is_some()).count();
        let _ = writeln!(
            out,
            "{:<9} {:<11} {:>8} {:>4} {:>5} {:>5} {:>6} {:>7} {:>7} {:>9} {:>8}",
            s.id,
            s.scorer,
            format!("1/{}", s.density),
            s.bugs,
            s.failures,
            s.iterations,
            s.unexplained,
            s.purity_mille,
            s.recovered(),
            s.rank_sum(),
            isolated
        );
    }
    out.push_str(&render_multi_summary(report));
    out
}

/// Renders the integer-only scorer × density aggregate used for golden
/// comparisons: purity in per-mille, counts, and rank sums — no floats
/// anywhere.
pub fn render_multi_summary(report: &MultiEvalReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "multi-bug summary: {} entries x densities {:?} x scorers {:?}",
        report.entries, report.densities, report.scorers
    );
    let _ = writeln!(
        out,
        "{:<11} {:>8} {:>7} {:>5} {:>9} {:>7} {:>6} {:>7} {:>8}",
        "scorer", "density", "entries", "bugs", "recovered", "purity", "iters", "unexpl", "ranksum"
    );
    let cells = aggregate(report);
    for (scorer_idx, scorer) in report.scorers.iter().enumerate() {
        for &density in &report.densities {
            let Some(c) = cells.get(&(scorer_idx, density)) else {
                continue;
            };
            let purity = if c.clustered_runs == 0 {
                0
            } else {
                c.purity_weighted / c.clustered_runs
            };
            let _ = writeln!(
                out,
                "{:<11} {:>8} {:>7} {:>5} {:>9} {:>7} {:>6} {:>7} {:>8}",
                scorer,
                format!("1/{density}"),
                c.entries,
                c.bugs,
                c.recovered,
                purity,
                c.iterations,
                c.unexplained,
                c.rank_sum
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_multi_corpus, MultiGenerateConfig};

    fn small_multi_corpus() -> Vec<CorpusEntry> {
        generate_multi_corpus(&MultiGenerateConfig {
            size: 2,
            seed: 31,
            trials: 48,
            bugs_per_entry: 2,
        })
        .unwrap()
        .entries
    }

    #[test]
    fn density_one_recovers_every_bug_into_a_pure_cluster() {
        let entries = small_multi_corpus();
        let report = evaluate_multi(
            &entries,
            &MultiEvalConfig {
                densities: vec![1],
                scorers: vec!["ochiai".to_string()],
                jobs: 1,
                ..MultiEvalConfig::default()
            },
        )
        .unwrap();
        for s in &report.scores {
            assert_eq!(s.purity_mille, 1000, "{}: clusters must be pure", s.id);
            assert_eq!(s.unexplained, 0, "{}: every failure explained", s.id);
            assert_eq!(s.recovered(), s.bugs, "{}: every bug recovered", s.id);
            // The loop may carve a bug's cluster with a perfectly
            // correlated predicate (e.g. an ok-slot check reached by
            // exactly the crashing inputs) rather than the planted
            // violated slot itself, so `isolated_at` is not asserted —
            // cluster purity is the recovery criterion, per §3.3.
            assert_eq!(s.iterations, s.bugs, "{}: one iteration per bug", s.id);
        }
    }

    #[test]
    fn multi_summary_is_identical_at_any_jobs() {
        let entries = small_multi_corpus();
        let render = |jobs: usize| {
            let report = evaluate_multi(
                &entries,
                &MultiEvalConfig {
                    densities: vec![1, 10],
                    scorers: vec!["ochiai".to_string(), "tarantula".to_string()],
                    jobs,
                    ..MultiEvalConfig::default()
                },
            )
            .unwrap();
            render_multi_report(&report)
        };
        let solo = render(1);
        assert_eq!(solo, render(2), "jobs 1 vs 2");
        assert_eq!(solo, render(4), "jobs 1 vs 4");
    }

    #[test]
    fn unknown_scorer_is_a_config_error() {
        let err = evaluate_multi(
            &[],
            &MultiEvalConfig {
                scorers: vec!["nope".to_string()],
                ..MultiEvalConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CorpusError::Config { .. }), "{err}");
    }
}
