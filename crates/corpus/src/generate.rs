//! Seeded corpus construction.
//!
//! Every candidate mutation must *prove* itself before it becomes a
//! corpus entry.  Validation runs the mutant through:
//!
//! 1. **Normalization** — `parse(pretty(mutant))`; the corpus stores the
//!    pretty-printed normal form, which is a pretty∘parse fixed point,
//!    so evaluation reconstructs the identical AST (and therefore the
//!    identical instrumentation layout) from disk.
//! 2. **Ground-truth identification** — instrument with the `checks`
//!    scheme and require *exactly one* bounds site whose subject matches
//!    the mutation's expected text; its violated counter is the truth.
//! 3. **A density-1 instrumented campaign** — the planted predicate must
//!    actually fire in failing runs and never in successful ones, the
//!    campaign must see at least two failures, and (unless the bug fires
//!    on every trial) at least two successes, so both elimination
//!    strategies have evidence to work with at every density.
//! 4. **An uninstrumented baseline sweep** — for deterministic store
//!    bugs the baseline failures must equal the instrumented failures:
//!    sampling the violation aborts the run, not sampling it corrupts
//!    the heap, and either way the same trials fail.
//!
//! Rejected candidates are skipped (and logged); generation keeps
//! advancing program seeds and mutation sites until it has the requested
//! number of demonstrated bugs.

use crate::manifest::{Fault, PlantedBug, Workload};
use crate::mutate::{
    plant_testgen, plant_testgen_named, plant_workload, store_candidates, workload_candidates,
    Mutation, Operator, MULTI_FAULT_VARS,
};
use crate::CorpusError;
use cbi_instrument::{instrument, Scheme, SiteKind};
use cbi_minic::{parse, pretty, Program};
use cbi_sampler::{Pcg32, SamplingDensity};
use cbi_testgen::{program_for_seed_with, GenConfig};
use cbi_vm::Vm;
use cbi_workloads::{
    bc_program, bc_trials, ccrypt_program, ccrypt_trials, run_campaign, BcTrialConfig,
    CampaignConfig, CcryptTrialConfig,
};
use std::fs;
use std::io::BufReader;
use std::path::Path;

/// Knobs for corpus construction.
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Total entries to produce.
    pub size: usize,
    /// Master seed: drives program generation, trial generation, and
    /// entry ordering.
    pub seed: u64,
    /// Trials per entry (used for validation and replayed by
    /// evaluation).
    pub trials: usize,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            size: 100,
            seed: 0xc0de,
            trials: 48,
        }
    }
}

/// One corpus entry: ground truth plus the normalized program source.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The ground-truth record.
    pub bug: PlantedBug,
    /// Normalized MiniC source of the mutated program.
    pub source: String,
}

/// A generated corpus, plus a log of candidates generation had to skip.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The validated entries, in manifest order.
    pub entries: Vec<CorpusEntry>,
    /// Human-readable notes about skipped operators or shortfalls — no
    /// silent coverage gaps.
    pub log: Vec<String>,
}

/// Generator configuration for corpus base programs: the stock testgen
/// shape with the three leading variables wired to scripted input, so
/// planted bugs can be input-conditioned.
pub fn corpus_gen_config() -> GenConfig {
    GenConfig {
        input_vars: 3,
        ..GenConfig::default()
    }
}

/// Trial inputs for corpus testgen programs: one token per input-wired
/// variable, drawn wide enough to push mutated indices both in and out
/// of bounds.
pub fn testgen_trials(n: usize, seed: u64) -> Vec<Vec<i64>> {
    let cfg = corpus_gen_config();
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|_| {
            (0..cfg.input_vars)
                .map(|_| -40 + rng.below(96) as i64)
                .collect()
        })
        .collect()
}

/// The ccrypt trial distribution used by the corpus: EOF-at-prompt
/// disabled, so the workload's organic crash is silenced and the planted
/// bug is the only failure source.
pub fn corpus_ccrypt_config() -> CcryptTrialConfig {
    CcryptTrialConfig {
        p_eof: 0.0,
        ..CcryptTrialConfig::default()
    }
}

/// Regenerates the trial inputs recorded for `bug`.
pub fn trials_for(bug: &PlantedBug) -> Vec<Vec<i64>> {
    match bug.workload {
        Workload::Testgen => testgen_trials(bug.trials, bug.trial_seed),
        Workload::Ccrypt => ccrypt_trials(bug.trials, bug.trial_seed, &corpus_ccrypt_config()),
        Workload::Bc => bc_trials(bug.trials, bug.trial_seed, &BcTrialConfig::default()),
    }
}

/// What validation learned about an accepted candidate.
struct Validated {
    true_counter: usize,
    true_predicate: String,
    layout_hash: u64,
    counters: usize,
    trigger: &'static str,
    baseline_failures: usize,
}

/// Validates a candidate mutation; `None` means "skip this candidate".
fn validate(source: &str, mutation: &Mutation, trials: &[Vec<i64>]) -> Option<Validated> {
    let program = parse(source).ok()?;
    let instrumented = instrument(&program, Scheme::Checks).ok()?;
    let sites = &instrumented.sites;
    let mut matches = sites
        .iter()
        .filter(|s| s.kind == SiteKind::Bounds && s.text == mutation.site_text);
    let site = matches.next()?;
    if matches.next().is_some() {
        return None; // ambiguous ground truth
    }
    let true_counter = site.counter_base; // slot 0 = violated
    let config = CampaignConfig::sampled(Scheme::Checks, SamplingDensity::one_in(1));
    let result = run_campaign(&program, trials, &config).ok()?;
    let failures = result.collector.failure_count();
    let successes = result.collector.success_count();
    let stats = result.collector.stats();
    // The planted predicate must be the demonstrated crash cause: it
    // fires in at least one failing run, and — since a sampled violation
    // aborts the run — in no successful one.
    if failures < 2 || stats.nonzero_failures(true_counter) == 0 {
        return None;
    }
    if stats.nonzero_successes(true_counter) != 0 {
        return None;
    }
    let trigger = if failures == trials.len() {
        "always"
    } else {
        if successes < 2 {
            return None; // too close to always-failing to be useful
        }
        "conditional"
    };
    let mut baseline_failures = 0usize;
    for trial in trials {
        let failed = match Vm::new(&program).with_input(trial.clone()).run() {
            Ok(result) => !result.outcome.is_success(),
            Err(_) => true,
        };
        baseline_failures += usize::from(failed);
    }
    if mutation.deterministic && baseline_failures != failures {
        // A "deterministic" bug must fail the same trials with and
        // without instrumentation; otherwise the label would lie.
        return None;
    }
    Some(Validated {
        true_counter,
        true_predicate: sites.predicate_name(true_counter),
        layout_hash: sites.layout_hash(),
        counters: sites.total_counters(),
        trigger,
        baseline_failures,
    })
}

/// Normalizes a mutant: pretty-print, re-parse, pretty-print.  The
/// result is a pretty∘parse fixed point (pinned by testgen's round-trip
/// tests), so what the corpus stores reconstructs bit-identically.
fn normalize(program: &Program) -> Option<String> {
    let reparsed = parse(&pretty(program)).ok()?;
    Some(pretty(&reparsed))
}

#[allow(clippy::too_many_arguments)]
fn entry_from(
    id: String,
    workload: Workload,
    operator: String,
    source: String,
    mutation: &Mutation,
    trials_n: usize,
    trial_seed: u64,
    v: Validated,
) -> CorpusEntry {
    CorpusEntry {
        bug: PlantedBug {
            schema: 1,
            source: format!("programs/{id}.mc"),
            id,
            workload,
            layout_hash: v.layout_hash,
            counters: v.counters,
            trials: trials_n,
            trial_seed,
            baseline_failures: v.baseline_failures,
            faults: vec![Fault {
                operator,
                deterministic: mutation.deterministic,
                trigger: v.trigger.to_string(),
                true_counter: v.true_counter,
                true_predicate: v.true_predicate,
            }],
        },
        source,
    }
}

/// Generates a corpus: a few `ccrypt` and `bc` entries (one twelfth of
/// the corpus each), the rest seeded testgen programs cycling through
/// the whole operator set.
pub fn generate_corpus(cfg: &GenerateConfig) -> Result<Corpus, CorpusError> {
    let mut entries = Vec::new();
    let mut log = Vec::new();
    let workload_quota = (cfg.size / 12).max(1);
    let workload_quota = if cfg.size <= 2 { 0 } else { workload_quota };

    // ccrypt and bc entries: scan (store, offset) pairs until the quota
    // is met or the candidates run out.
    for (workload, program) in [
        (Workload::Ccrypt, ccrypt_program()),
        (Workload::Bc, bc_program()),
    ] {
        let tag = match workload {
            Workload::Ccrypt => "cc",
            Workload::Bc => "bc",
            Workload::Testgen => unreachable!(),
        };
        let candidates = workload_candidates(&program);
        let mut accepted = 0usize;
        'pairs: for nth in 0..candidates {
            for offset in [1, 2, 4, 8] {
                if accepted >= workload_quota {
                    break 'pairs;
                }
                let Some(mutation) = plant_workload(&program, nth, offset) else {
                    continue;
                };
                let Some(source) = normalize(&mutation.program) else {
                    continue;
                };
                let trial_seed = cfg
                    .seed
                    .wrapping_add(0x1000 * (1 + workload as u64))
                    .wrapping_add(accepted as u64);
                let trials = match workload {
                    Workload::Ccrypt => {
                        ccrypt_trials(cfg.trials, trial_seed, &corpus_ccrypt_config())
                    }
                    Workload::Bc => bc_trials(cfg.trials, trial_seed, &BcTrialConfig::default()),
                    Workload::Testgen => unreachable!(),
                };
                let Some(v) = validate(&source, &mutation, &trials) else {
                    continue;
                };
                let id = format!("{tag}-{accepted:04}");
                entries.push(entry_from(
                    id,
                    workload,
                    Operator::BadPointerOffset(offset).name(),
                    source,
                    &mutation,
                    cfg.trials,
                    trial_seed,
                    v,
                ));
                accepted += 1;
            }
        }
        if accepted < workload_quota {
            log.push(format!(
                "{workload}: validated {accepted}/{workload_quota} planted bugs \
                 ({candidates} candidate stores); testgen entries fill the gap"
            ));
        }
    }

    // Testgen entries fill the remainder, cycling the operator set.
    let ops = [
        Operator::OffByOneIndex,
        Operator::DroppedBoundsCheck,
        Operator::BadPointerOffset(4),
        Operator::FlippedComparison,
        Operator::WrongGuardPolarity,
        Operator::OffByOneLoop,
        Operator::BadPointerOffset(8),
    ];
    let gen_cfg = corpus_gen_config();
    let target = cfg.size;
    let mut prog_seed = cfg.seed;
    let mut op_cursor = 0usize;
    let mut misses = 0usize;
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    let attempt_cap = cfg.size * 400 + 4000;
    while entries.len() < target {
        attempts += 1;
        if attempts > attempt_cap {
            return Err(CorpusError::Exhausted {
                wanted: target,
                got: entries.len(),
            });
        }
        let op = &ops[op_cursor % ops.len()];
        let program = program_for_seed_with(prog_seed, &gen_cfg);
        let this_seed = prog_seed;
        prog_seed = prog_seed.wrapping_add(1);
        let trial_seed = cfg.seed.wrapping_add(0x9000).wrapping_add(this_seed);
        let trials = testgen_trials(cfg.trials, trial_seed);
        let candidates = if matches!(op, Operator::OffByOneLoop) {
            1
        } else {
            store_candidates(&program, gen_cfg.buf_len)
        };
        let mut planted = false;
        for nth in 0..candidates {
            let Some(mutation) = plant_testgen(&program, op, nth, gen_cfg.buf_len) else {
                continue;
            };
            let Some(source) = normalize(&mutation.program) else {
                continue;
            };
            let Some(v) = validate(&source, &mutation, &trials) else {
                continue;
            };
            let id = format!("tg-{accepted:04}");
            entries.push(entry_from(
                id,
                Workload::Testgen,
                op.name(),
                source,
                &mutation,
                cfg.trials,
                trial_seed,
                v,
            ));
            accepted += 1;
            planted = true;
            break;
        }
        if planted {
            op_cursor += 1;
            misses = 0;
        } else {
            misses += 1;
            if misses >= 25 {
                log.push(format!(
                    "testgen: operator {} found no valid plant in 25 consecutive \
                     programs (around seed {this_seed}); rotating on",
                    op.name()
                ));
                op_cursor += 1;
                misses = 0;
            }
        }
    }
    Ok(Corpus { entries, log })
}

/// Knobs for multi-bug corpus construction.
#[derive(Debug, Clone)]
pub struct MultiGenerateConfig {
    /// Total entries to produce.
    pub size: usize,
    /// Master seed.
    pub seed: u64,
    /// Trials per entry.
    pub trials: usize,
    /// Interacting faults planted per entry (clamped to the fault
    /// temporary pool, currently 3).
    pub bugs_per_entry: usize,
}

impl Default for MultiGenerateConfig {
    fn default() -> Self {
        MultiGenerateConfig {
            size: 12,
            seed: 0xc0de,
            trials: 96,
            bugs_per_entry: 2,
        }
    }
}

/// Jointly validates a multi-fault mutant: every fault's predicate must
/// fire in at least two failing runs and no successful one, and every
/// fault must *uniquely* explain at least one failure — a failing run
/// in which its counter is the only planted counter observed — so the
/// isolation loop has a disjoint core to recover.
fn validate_multi(
    source: &str,
    planted: &[(String, String, bool)], // (operator, site_text, deterministic)
    trials: &[Vec<i64>],
) -> Option<(Vec<Fault>, u64, usize, usize)> {
    let program = parse(source).ok()?;
    let instrumented = instrument(&program, Scheme::Checks).ok()?;
    let sites = &instrumented.sites;
    let mut counters_of = Vec::with_capacity(planted.len());
    for (_, site_text, _) in planted {
        let mut matches = sites
            .iter()
            .filter(|s| s.kind == SiteKind::Bounds && s.text == *site_text);
        let site = matches.next()?;
        if matches.next().is_some() {
            return None; // ambiguous ground truth
        }
        counters_of.push(site.counter_base);
    }
    let config = CampaignConfig::sampled(Scheme::Checks, SamplingDensity::one_in(1));
    let result = run_campaign(&program, trials, &config).ok()?;
    let collector = &result.collector;
    let failures = collector.failure_count();
    let successes = collector.success_count();
    if successes < 2 {
        return None;
    }
    let stats = collector.stats();
    let mut validated = Vec::with_capacity(planted.len());
    for (k, (operator, _, deterministic)) in planted.iter().enumerate() {
        let tc = counters_of[k];
        if stats.nonzero_failures(tc) < 2 || stats.nonzero_successes(tc) != 0 {
            return None;
        }
        // Unique explanation: a failing run where this fault's counter
        // is the only planted counter observed nonzero.
        let unique_failures = collector
            .with_label(cbi_reports::Label::Failure)
            .filter(|r| {
                counters_of
                    .iter()
                    .enumerate()
                    .all(|(j, &c)| (r.counters[c] != 0) == (j == k))
            })
            .count();
        if unique_failures == 0 {
            return None;
        }
        let trigger = if stats.nonzero_failures(tc) as usize == trials.len() {
            "always"
        } else {
            "conditional"
        };
        validated.push(Fault {
            operator: operator.clone(),
            deterministic: *deterministic,
            trigger: trigger.to_string(),
            true_counter: tc,
            true_predicate: sites.predicate_name(tc),
        });
    }
    let mut baseline_failures = 0usize;
    for trial in trials {
        let failed = match Vm::new(&program).with_input(trial.clone()).run() {
            Ok(result) => !result.outcome.is_success(),
            Err(_) => true,
        };
        baseline_failures += usize::from(failed);
    }
    if planted.iter().all(|(_, _, d)| *d) && baseline_failures != failures {
        return None;
    }
    if baseline_failures > failures {
        return None;
    }
    Some((
        validated,
        sites.layout_hash(),
        sites.total_counters(),
        baseline_failures,
    ))
}

/// Generates a corpus whose entries each carry several interacting
/// planted faults (manifest schema v2).
///
/// Faults come from the deterministic store-operator pool only: an
/// `off_by_one_loop` plant fires on *every* run at density 1, which
/// would abort every trial before the other faults could manifest and
/// leave nothing for them to uniquely explain.  Faults are planted at
/// spread-out candidate stores in descending index order (a rewritten
/// store leaves the candidate list, so lower indices stay valid), each
/// routed through its own temporary from
/// [`MULTI_FAULT_VARS`](crate::mutate::MULTI_FAULT_VARS).
pub fn generate_multi_corpus(cfg: &MultiGenerateConfig) -> Result<Corpus, CorpusError> {
    let bugs = cfg.bugs_per_entry.clamp(2, MULTI_FAULT_VARS.len());
    let ops = [
        Operator::OffByOneIndex,
        Operator::DroppedBoundsCheck,
        Operator::BadPointerOffset(4),
        Operator::FlippedComparison,
        Operator::WrongGuardPolarity,
        Operator::BadPointerOffset(8),
    ];
    let gen_cfg = corpus_gen_config();
    let mut entries: Vec<CorpusEntry> = Vec::new();
    let mut log = Vec::new();
    let mut prog_seed = cfg.seed;
    let mut attempts = 0usize;
    let attempt_cap = cfg.size * 400 + 4000;
    while entries.len() < cfg.size {
        attempts += 1;
        if attempts > attempt_cap {
            return Err(CorpusError::Exhausted {
                wanted: cfg.size,
                got: entries.len(),
            });
        }
        let program = program_for_seed_with(prog_seed, &gen_cfg);
        let this_seed = prog_seed;
        prog_seed = prog_seed.wrapping_add(1);
        let candidates = store_candidates(&program, gen_cfg.buf_len);
        if candidates < bugs {
            continue;
        }
        // Spread the planted stores across the candidate list; indices
        // are strictly increasing because candidates >= bugs.
        let indices: Vec<usize> = (0..bugs).map(|k| k * candidates / bugs).collect();
        let mut current = program;
        let mut planted: Vec<(String, String, bool)> = Vec::new();
        let mut ok = true;
        for k in (0..bugs).rev() {
            let op = &ops[(attempts + k) % ops.len()];
            let Some(m) =
                plant_testgen_named(&current, op, indices[k], gen_cfg.buf_len, MULTI_FAULT_VARS[k])
            else {
                ok = false;
                break;
            };
            current = m.program;
            planted.push((op.name(), m.site_text, m.deterministic));
        }
        if !ok {
            continue;
        }
        planted.reverse(); // fault_t first, matching MULTI_FAULT_VARS order
        let Some(source) = normalize(&current) else {
            continue;
        };
        let trial_seed = cfg.seed.wrapping_add(0xb000).wrapping_add(this_seed);
        let trials = testgen_trials(cfg.trials, trial_seed);
        let Some((faults, layout_hash, counters, baseline_failures)) =
            validate_multi(&source, &planted, &trials)
        else {
            continue;
        };
        let id = format!("mb-{:04}", entries.len());
        entries.push(CorpusEntry {
            bug: PlantedBug {
                schema: 2,
                source: format!("programs/{id}.mc"),
                id,
                workload: Workload::Testgen,
                layout_hash,
                counters,
                trials: cfg.trials,
                trial_seed,
                baseline_failures,
                faults,
            },
            source,
        });
    }
    if attempts > cfg.size * 40 {
        log.push(format!(
            "multi: {attempts} attempts for {} entries of {bugs} faults each",
            entries.len()
        ));
    }
    Ok(Corpus { entries, log })
}

/// Writes a corpus to `dir`: `manifest.jsonl` plus one `programs/<id>.mc`
/// per entry.
pub fn write_corpus(dir: &Path, corpus: &Corpus) -> Result<(), CorpusError> {
    fs::create_dir_all(dir.join("programs"))?;
    for entry in &corpus.entries {
        fs::write(dir.join(&entry.bug.source), &entry.source)?;
    }
    let mut manifest = Vec::new();
    crate::manifest::write_manifest(
        &mut manifest,
        &corpus
            .entries
            .iter()
            .map(|e| e.bug.clone())
            .collect::<Vec<_>>(),
    )?;
    fs::write(dir.join("manifest.jsonl"), manifest)?;
    Ok(())
}

/// Loads a corpus written by [`write_corpus`].
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, CorpusError> {
    let manifest = fs::File::open(dir.join("manifest.jsonl"))?;
    let bugs = crate::manifest::read_manifest(BufReader::new(manifest))?;
    bugs.into_iter()
        .map(|bug| {
            let source = fs::read_to_string(dir.join(&bug.source))?;
            Ok(CorpusEntry { bug, source })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_generates_and_round_trips() {
        let cfg = GenerateConfig {
            size: 6,
            seed: 11,
            trials: 24,
        };
        let corpus = generate_corpus(&cfg).expect("generation must succeed");
        assert_eq!(corpus.entries.len(), 6);
        // Mixed workloads when size permits.
        assert!(corpus
            .entries
            .iter()
            .any(|e| e.bug.workload == Workload::Testgen));
        for entry in &corpus.entries {
            assert!(entry.bug.counters > 0);
            assert_eq!(entry.bug.schema, 1);
            assert!(entry.bug.primary().true_counter < entry.bug.counters);
            assert!(["always", "conditional"].contains(&entry.bug.primary().trigger.as_str()));
            // Normal form on disk: the stored source is a fixed point.
            let reparsed = parse(&entry.source).unwrap();
            assert_eq!(pretty(&reparsed), entry.source);
        }
        let dir = std::env::temp_dir().join(format!("cbi-corpus-test-{}", std::process::id()));
        write_corpus(&dir, &corpus).unwrap();
        let back = load_corpus(&dir).unwrap();
        assert_eq!(back.len(), corpus.entries.len());
        for (a, b) in corpus.entries.iter().zip(&back) {
            assert_eq!(a.bug, b.bug);
            assert_eq!(a.source, b.source);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_bug_corpus_generates_disjoint_validated_faults() {
        let cfg = MultiGenerateConfig {
            size: 2,
            seed: 31,
            trials: 48,
            bugs_per_entry: 2,
        };
        let corpus = generate_multi_corpus(&cfg).expect("multi generation must succeed");
        assert_eq!(corpus.entries.len(), 2);
        for entry in &corpus.entries {
            let bug = &entry.bug;
            assert_eq!(bug.schema, 2);
            assert_eq!(bug.faults.len(), 2);
            assert!(bug.id.starts_with("mb-"));
            // Distinct counters, all within the layout.
            let tcs = bug.true_counters();
            assert!(tcs.iter().all(|&c| c < bug.counters));
            assert_ne!(tcs[0], tcs[1]);
            // Each fault routes through its own temporary.
            assert!(entry.source.contains("fault_t") && entry.source.contains("fault_u"));
            // Stored source is a pretty∘parse fixed point.
            let reparsed = parse(&entry.source).unwrap();
            assert_eq!(pretty(&reparsed), entry.source);
        }
        // v2 entries round-trip through the manifest codec.
        let dir = std::env::temp_dir().join(format!("cbi-multi-test-{}", std::process::id()));
        write_corpus(&dir, &corpus).unwrap();
        let back = load_corpus(&dir).unwrap();
        for (a, b) in corpus.entries.iter().zip(&back) {
            assert_eq!(a.bug, b.bug);
            assert_eq!(a.source, b.source);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenerateConfig {
            size: 4,
            seed: 23,
            trials: 24,
        };
        let a = generate_corpus(&cfg).unwrap();
        let b = generate_corpus(&cfg).unwrap();
        let digest = |c: &Corpus| {
            c.entries
                .iter()
                .map(|e| format!("{:?}|{}", e.bug, e.source))
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(&a), digest(&b));
    }
}
