//! The MiniC lexer.
//!
//! Hand-written scanner producing a `Vec<Token>`.  Supports `//` line
//! comments and `/* … */` block comments (non-nesting, like C).

use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::MiniCError;

/// Tokenizes MiniC source text.
///
/// # Errors
///
/// Returns [`MiniCError`] on unterminated block comments, malformed integer
/// literals, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, MiniCError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }

    fn error(&self, span: Span, message: impl Into<String>) -> MiniCError {
        MiniCError::lex(span, message)
    }

    fn run(mut self) -> Result<Vec<Token>, MiniCError> {
        while let Some(c) = self.peek() {
            let span = self.here();
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(self.error(span, "unterminated block comment"));
                    }
                }
                b'0'..=b'9' => self.lex_number(span)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(span),
                _ => self.lex_operator(span)?,
            }
        }
        let span = self.here();
        self.push(TokenKind::Eof, span);
        Ok(self.tokens)
    }

    fn lex_number(&mut self, span: Span) -> Result<(), MiniCError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
            return Err(self.error(span, "identifier may not start with a digit"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are ASCII");
        let value: i64 = text
            .parse()
            .map_err(|_| self.error(span, format!("integer literal `{text}` out of range")))?;
        self.push(TokenKind::Int(value), span);
        Ok(())
    }

    fn lex_word(&mut self, span: Span) {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("word chars are ASCII");
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
        self.push(kind, span);
    }

    fn lex_operator(&mut self, span: Span) -> Result<(), MiniCError> {
        let c = self.bump().expect("caller checked peek");
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'+' => TokenKind::Plus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(self.error(span, "single `&` is not a MiniC operator"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(self.error(span, "single `|` is not a MiniC operator"));
                }
            }
            other => {
                return Err(self.error(span, format!("unexpected character `{}`", other as char)))
            }
        };
        self.push(kind, span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_function() {
        let ks = kinds("fn main() -> int { return 0; }");
        assert_eq!(
            ks,
            vec![
                T::KwFn,
                T::Ident("main".into()),
                T::LParen,
                T::RParen,
                T::Arrow,
                T::KwInt,
                T::LBrace,
                T::KwReturn,
                T::Int(0),
                T::Semi,
                T::RBrace,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_all_operators() {
        let ks = kinds("+ - * / % == != < <= > >= && || ! = -> [ ] ( ) { } , ;");
        assert_eq!(
            ks,
            vec![
                T::Plus,
                T::Minus,
                T::Star,
                T::Slash,
                T::Percent,
                T::EqEq,
                T::NotEq,
                T::Lt,
                T::Le,
                T::Gt,
                T::Ge,
                T::AndAnd,
                T::OrOr,
                T::Bang,
                T::Assign,
                T::Arrow,
                T::LBracket,
                T::RBracket,
                T::LParen,
                T::RParen,
                T::LBrace,
                T::RBrace,
                T::Comma,
                T::Semi,
                T::Eof
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        let ks = kinds("1 // ignore me\n2");
        assert_eq!(ks, vec![T::Int(1), T::Int(2), T::Eof]);
    }

    #[test]
    fn skips_block_comments() {
        let ks = kinds("1 /* multi\nline */ 2");
        assert_eq!(ks, vec![T::Int(1), T::Int(2), T::Eof]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nbb\n  c").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
        assert_eq!(toks[2].span.col, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("#").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn rejects_digit_led_identifier() {
        assert!(lex("1abc").is_err());
    }

    #[test]
    fn rejects_overflowing_literal() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn keywords_versus_identifiers() {
        let ks = kinds("while whiles");
        assert_eq!(ks, vec![T::KwWhile, T::Ident("whiles".into()), T::Eof]);
    }

    #[test]
    fn empty_source_yields_eof_only() {
        assert_eq!(kinds(""), vec![T::Eof]);
    }
}
