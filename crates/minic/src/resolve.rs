//! Name resolution and static checking for MiniC.
//!
//! The resolver enforces:
//!
//! * no duplicate globals, functions, parameters, or locals — and no
//!   shadowing within a function (the scalar-pairs instrumentation scheme
//!   identifies variables by name within a function, so names must be
//!   unambiguous);
//! * all variable references are in scope, all calls resolve to a defined
//!   function or builtin with matching arity;
//! * gradual typing: `int` and `ptr` are checked everywhere statically
//!   decidable; heap loads have unknown type and unify with anything
//!   (the VM re-checks dynamically);
//! * `break`/`continue` appear only inside loops; a program intended to run
//!   must define `main`.
//!
//! On success it returns [`ProgramInfo`] with the per-function variable
//! types that the instrumentation schemes need.

use crate::ast::*;
use crate::builtins::Builtin;
use crate::span::Span;
use crate::MiniCError;
use std::collections::HashMap;

/// Static type as used during checking: `Any` is the type of heap loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Ptr,
    Any,
}

impl Ty {
    fn of(t: Type) -> Ty {
        match t {
            Type::Int => Ty::Int,
            Type::Ptr => Ty::Ptr,
        }
    }

    fn accepts(self, other: Ty) -> bool {
        matches!(
            (self, other),
            (Ty::Any, _) | (_, Ty::Any) | (Ty::Int, Ty::Int) | (Ty::Ptr, Ty::Ptr)
        )
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => f.write_str("int"),
            Ty::Ptr => f.write_str("ptr"),
            Ty::Any => f.write_str("<heap>"),
        }
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type, or `None` for procedures.
    pub ret: Option<Type>,
}

/// Per-function static information.
#[derive(Debug, Clone, Default)]
pub struct FunctionInfo {
    /// Types of all parameters and locals, by (unique) name.
    pub var_types: HashMap<String, Type>,
}

/// Whole-program static information produced by [`resolve`].
#[derive(Debug, Clone, Default)]
pub struct ProgramInfo {
    /// Types of global variables.
    pub global_types: HashMap<String, Type>,
    /// Signatures of all defined functions.
    pub signatures: HashMap<String, FnSig>,
    /// Per-function variable tables.
    pub functions: HashMap<String, FunctionInfo>,
}

impl ProgramInfo {
    /// The static type of variable `var` as seen from inside `function`:
    /// locals/params first, then globals.
    pub fn var_type(&self, function: &str, var: &str) -> Option<Type> {
        self.functions
            .get(function)
            .and_then(|f| f.var_types.get(var).copied())
            .or_else(|| self.global_types.get(var).copied())
    }
}

/// Resolves and statically checks a program.
///
/// # Errors
///
/// Returns the first [`MiniCError`] found; the message names the offending
/// identifier and source position.
///
/// ```
/// let prog = cbi_minic::parse("fn main() -> int { return 0; }").unwrap();
/// let info = cbi_minic::resolve(&prog).unwrap();
/// assert!(info.signatures.contains_key("main"));
/// ```
pub fn resolve(program: &Program) -> Result<ProgramInfo, MiniCError> {
    resolve_mode(program, false)
}

/// Resolves an *instrumented* program.
///
/// The sampling transformation clones acyclic regions into fast and slow
/// paths, so a local declaration may lexically appear in both arms of a
/// synthesized threshold check.  This mode permits redeclaring a local with
/// the same type (the declarations are on mutually exclusive paths); all
/// other checks are identical to [`resolve`].
///
/// # Errors
///
/// Returns the first [`MiniCError`] found.
pub fn resolve_relaxed(program: &Program) -> Result<ProgramInfo, MiniCError> {
    resolve_mode(program, true)
}

fn resolve_mode(program: &Program, relaxed: bool) -> Result<ProgramInfo, MiniCError> {
    let mut info = ProgramInfo::default();

    for g in &program.globals {
        if Builtin::from_name(&g.name).is_some() {
            return Err(err(
                g.span,
                format!("`{}` is a reserved builtin name", g.name),
            ));
        }
        if info.global_types.insert(g.name.clone(), g.ty).is_some() {
            return Err(err(g.span, format!("duplicate global `{}`", g.name)));
        }
    }

    for f in &program.functions {
        if Builtin::from_name(&f.name).is_some() {
            return Err(err(
                f.span,
                format!("function `{}` collides with a builtin", f.name),
            ));
        }
        let sig = FnSig {
            params: f.params.iter().map(|p| p.ty).collect(),
            ret: f.ret,
        };
        if info.signatures.insert(f.name.clone(), sig).is_some() {
            return Err(err(f.span, format!("duplicate function `{}`", f.name)));
        }
    }

    for f in &program.functions {
        let fi = check_function(f, &info, relaxed)?;
        info.functions.insert(f.name.clone(), fi);
    }

    Ok(info)
}

fn err(span: Span, message: impl Into<String>) -> MiniCError {
    MiniCError::resolve(span, message)
}

struct Checker<'a> {
    info: &'a ProgramInfo,
    function: &'a Function,
    /// All variables declared so far in this function (uniqueness scope).
    vars: HashMap<String, Type>,
    loop_depth: usize,
    /// Permit same-type redeclarations (instrumented dual paths).
    relaxed: bool,
}

fn check_function(
    f: &Function,
    info: &ProgramInfo,
    relaxed: bool,
) -> Result<FunctionInfo, MiniCError> {
    let mut ck = Checker {
        info,
        function: f,
        vars: HashMap::new(),
        loop_depth: 0,
        relaxed,
    };
    for p in &f.params {
        if Builtin::from_name(&p.name).is_some() {
            return Err(err(
                p.span,
                format!("`{}` is a reserved builtin name", p.name),
            ));
        }
        if info.global_types.contains_key(&p.name) {
            return Err(err(
                p.span,
                format!("parameter `{}` shadows a global", p.name),
            ));
        }
        if ck.vars.insert(p.name.clone(), p.ty).is_some() {
            return Err(err(p.span, format!("duplicate parameter `{}`", p.name)));
        }
    }
    ck.block(&f.body)?;
    Ok(FunctionInfo { var_types: ck.vars })
}

impl Checker<'_> {
    fn lookup(&self, name: &str, span: Span) -> Result<Ty, MiniCError> {
        if let Some(t) = self.vars.get(name) {
            return Ok(Ty::of(*t));
        }
        if let Some(t) = self.info.global_types.get(name) {
            return Ok(Ty::of(*t));
        }
        Err(err(span, format!("undefined variable `{name}`")))
    }

    fn block(&mut self, b: &Block) -> Result<(), MiniCError> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), MiniCError> {
        match s {
            Stmt::Decl {
                ty,
                name,
                init,
                span,
            } => {
                if Builtin::from_name(name).is_some() {
                    return Err(err(*span, format!("`{name}` is a reserved builtin name")));
                }
                if self.info.global_types.contains_key(name) {
                    return Err(err(*span, format!("local `{name}` shadows a global")));
                }
                if let Some(init) = init {
                    let it = self.expr(init)?;
                    if !Ty::of(*ty).accepts(it) {
                        return Err(err(
                            *span,
                            format!("cannot initialize `{ty}` variable `{name}` with {it}"),
                        ));
                    }
                }
                if let Some(prev) = self.vars.insert(name.clone(), *ty) {
                    if !(self.relaxed && prev == *ty) {
                        return Err(err(
                            *span,
                            format!("duplicate local `{name}` (MiniC forbids shadowing)"),
                        ));
                    }
                }
                Ok(())
            }
            Stmt::Assign { name, value, span } => {
                let vt = self.lookup(name, *span)?;
                let et = self.expr(value)?;
                if !vt.accepts(et) {
                    return Err(err(
                        *span,
                        format!("cannot assign {et} to `{name}` of type {vt}"),
                    ));
                }
                Ok(())
            }
            Stmt::Store {
                target,
                index,
                value,
                span,
            } => {
                let tt = self.lookup(target, *span)?;
                if !tt.accepts(Ty::Ptr) {
                    return Err(err(
                        *span,
                        format!("store target `{target}` is not a pointer"),
                    ));
                }
                let it = self.expr(index)?;
                if !it.accepts(Ty::Int) {
                    return Err(err(*span, "store index must be an integer".to_string()));
                }
                self.expr(value)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                span,
            } => {
                let ct = self.expr(cond)?;
                if !ct.accepts(Ty::Int) {
                    return Err(err(*span, "if condition must be an integer".to_string()));
                }
                self.block(then_block)?;
                if let Some(e) = else_block {
                    self.block(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, span } => {
                let ct = self.expr(cond)?;
                if !ct.accepts(Ty::Int) {
                    return Err(err(*span, "while condition must be an integer".to_string()));
                }
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::Return { value, span } => match (self.function.ret, value) {
                (None, None) => Ok(()),
                (None, Some(_)) => Err(err(
                    *span,
                    format!("procedure `{}` cannot return a value", self.function.name),
                )),
                (Some(t), None) => Err(err(
                    *span,
                    format!(
                        "function `{}` must return a value of type {t}",
                        self.function.name
                    ),
                )),
                (Some(t), Some(v)) => {
                    let vt = self.expr(v)?;
                    if !Ty::of(t).accepts(vt) {
                        return Err(err(
                            *span,
                            format!("returning {vt} from function of type {t}"),
                        ));
                    }
                    Ok(())
                }
            },
            Stmt::Break { span } | Stmt::Continue { span } => {
                if self.loop_depth == 0 {
                    Err(err(*span, "break/continue outside of a loop".to_string()))
                } else {
                    Ok(())
                }
            }
            Stmt::Check { cond, span } => {
                let ct = self.expr(cond)?;
                if !ct.accepts(Ty::Int) {
                    return Err(err(*span, "check condition must be an integer".to_string()));
                }
                Ok(())
            }
            Stmt::Expr { expr, span } => match expr {
                Expr::Call { .. } => self.expr(expr).map(|_| ()),
                _ => Err(err(
                    *span,
                    "expression statements must be calls".to_string(),
                )),
            },
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Ty, MiniCError> {
        match e {
            Expr::Int { .. } => Ok(Ty::Int),
            Expr::Null { .. } => Ok(Ty::Ptr),
            Expr::Var { name, span } => self.lookup(name, *span),
            Expr::Load { ptr, index, span } => {
                let pt = self.expr(ptr)?;
                if !pt.accepts(Ty::Ptr) {
                    return Err(err(*span, "indexing a non-pointer".to_string()));
                }
                let it = self.expr(index)?;
                if !it.accepts(Ty::Int) {
                    return Err(err(*span, "index must be an integer".to_string()));
                }
                Ok(Ty::Any)
            }
            Expr::Call { name, args, span } => self.call(name, args, *span),
            Expr::Unary { op, expr, span } => {
                let t = self.expr(expr)?;
                if !t.accepts(Ty::Int) {
                    return Err(err(*span, format!("unary `{op}` needs an integer operand")));
                }
                Ok(Ty::Int)
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let lt = self.expr(lhs)?;
                let rt = self.expr(rhs)?;
                self.binary(*op, lt, rt, *span)
            }
        }
    }

    fn binary(&self, op: BinOp, lt: Ty, rt: Ty, span: Span) -> Result<Ty, MiniCError> {
        use BinOp::*;
        match op {
            Add | Sub => {
                // int ◦ int -> int; ptr + int -> ptr; ptr - int -> ptr;
                // ptr - ptr -> int.
                match (lt, rt) {
                    (Ty::Int, Ty::Int) => Ok(Ty::Int),
                    (Ty::Ptr, Ty::Int) => Ok(Ty::Ptr),
                    (Ty::Ptr, Ty::Ptr) if op == Sub => Ok(Ty::Int),
                    (Ty::Any, _) | (_, Ty::Any) => Ok(Ty::Any),
                    _ => Err(err(span, format!("invalid operands {lt} {op} {rt}"))),
                }
            }
            Mul | Div | Mod => {
                if lt.accepts(Ty::Int) && rt.accepts(Ty::Int) {
                    Ok(Ty::Int)
                } else {
                    Err(err(span, format!("invalid operands {lt} {op} {rt}")))
                }
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                if lt.accepts(rt) {
                    Ok(Ty::Int)
                } else {
                    Err(err(span, format!("comparing {lt} with {rt}")))
                }
            }
            And | Or => {
                if lt.accepts(Ty::Int) && rt.accepts(Ty::Int) {
                    Ok(Ty::Int)
                } else {
                    Err(err(span, format!("logical `{op}` needs integer operands")))
                }
            }
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], span: Span) -> Result<Ty, MiniCError> {
        if let Some(b) = Builtin::from_name(name) {
            if args.len() != b.arity() {
                return Err(err(
                    span,
                    format!(
                        "builtin `{name}` expects {} argument(s), got {}",
                        b.arity(),
                        args.len()
                    ),
                ));
            }
            let arg_tys: Vec<Ty> = args
                .iter()
                .map(|a| self.expr(a))
                .collect::<Result<_, _>>()?;
            match b {
                Builtin::Alloc | Builtin::Print | Builtin::Exit => {
                    if !arg_tys[0].accepts(Ty::Int) {
                        return Err(err(span, format!("`{name}` needs an integer argument")));
                    }
                }
                Builtin::Free | Builtin::Len => {
                    if !arg_tys[0].accepts(Ty::Ptr) {
                        return Err(err(span, format!("`{name}` needs a pointer argument")));
                    }
                }
                Builtin::ObsCheck => {
                    if !arg_tys[0].accepts(Ty::Int) || !arg_tys[1].accepts(Ty::Int) {
                        return Err(err(span, format!("`{name}` needs integer arguments")));
                    }
                }
                Builtin::ObsSign => {
                    // The observed value may be an int or a pointer (§3.2.1
                    // groups pointer-returning calls too: null counts as
                    // zero, non-null as positive).
                    if !arg_tys[0].accepts(Ty::Int) {
                        return Err(err(
                            span,
                            "`__obs_sign` site id must be an integer".to_string(),
                        ));
                    }
                }
                Builtin::ObsCmp => {
                    if !arg_tys[0].accepts(Ty::Int) {
                        return Err(err(span, "`__cmp` site id must be an integer".to_string()));
                    }
                    if !arg_tys[1].accepts(arg_tys[2]) {
                        return Err(err(
                            span,
                            "`__cmp` operands must have matching types".to_string(),
                        ));
                    }
                }
                Builtin::Read | Builtin::HasInput | Builtin::NextCountdown => {}
            }
            return Ok(b.ret().map_or(Ty::Any, Ty::of));
        }

        let sig = self
            .info
            .signatures
            .get(name)
            .ok_or_else(|| err(span, format!("call to undefined function `{name}`")))?
            .clone();
        if sig.params.len() != args.len() {
            return Err(err(
                span,
                format!(
                    "function `{name}` expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        for (a, pt) in args.iter().zip(&sig.params) {
            let at = self.expr(a)?;
            if !Ty::of(*pt).accepts(at) {
                return Err(err(
                    a.span(),
                    format!("argument type {at} does not match parameter type {pt}"),
                ));
            }
        }
        Ok(sig.ret.map_or(Ty::Any, Ty::of))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn ok(src: &str) -> ProgramInfo {
        let p = parse(src).unwrap();
        resolve(&p).unwrap_or_else(|e| panic!("resolve failed: {e}\nsource:\n{src}"))
    }

    fn fails(src: &str) -> String {
        let p = parse(src).unwrap();
        resolve(&p).unwrap_err().to_string()
    }

    #[test]
    fn accepts_well_typed_program() {
        let info = ok("int g = 1;\n\
             fn add(int a, int b) -> int { return a + b; }\n\
             fn main() -> int { int x = add(g, 2); return x; }");
        assert_eq!(info.signatures.len(), 2);
        assert_eq!(info.var_type("main", "x"), Some(Type::Int));
        assert_eq!(info.var_type("main", "g"), Some(Type::Int));
    }

    #[test]
    fn rejects_duplicate_global() {
        assert!(fails("int a; int a;").contains("duplicate global"));
    }

    #[test]
    fn rejects_duplicate_function() {
        assert!(fails("fn f() {} fn f() {}").contains("duplicate function"));
    }

    #[test]
    fn rejects_duplicate_local_and_shadowing() {
        assert!(fails("fn f() { int x; int x; }").contains("duplicate local"));
        assert!(fails("int g; fn f() { int g; }").contains("shadows a global"));
        assert!(fails("int g; fn f(int g) {}").contains("shadows a global"));
        assert!(fails("fn f(int a, int a) {}").contains("duplicate parameter"));
    }

    #[test]
    fn rejects_undefined_names() {
        assert!(fails("fn f() -> int { return y; }").contains("undefined variable"));
        assert!(fails("fn f() { g(); }").contains("undefined function"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(fails("fn g(int a) {} fn f() { g(); }").contains("expects 1"));
        assert!(fails("fn f() { print(1, 2); }").contains("expects 1"));
    }

    #[test]
    fn rejects_type_mismatches() {
        assert!(fails("fn f() { int x = null; }").contains("cannot initialize"));
        assert!(fails("fn f(ptr p) { int x = p; }").contains("cannot initialize"));
        assert!(fails("fn f(ptr p) -> int { return p * 2; }").contains("invalid operands"));
        assert!(fails("fn f(ptr p, int i) -> int { return p == i; }").contains("comparing"));
        assert!(fails("fn f(int i) { free(i); }").contains("pointer argument"));
        assert!(fails("fn f(ptr p) { print(p); }").contains("integer argument"));
    }

    #[test]
    fn pointer_arithmetic_rules() {
        ok("fn f(ptr p, int i) -> ptr { return p + i; }");
        ok("fn f(ptr p, ptr q) -> int { return p - q; }");
        ok("fn f(ptr p) -> int { return p == null; }");
        ok("fn f(ptr p, ptr q) -> int { return p < q; }");
        assert!(fails("fn f(ptr p, ptr q) -> ptr { return p + q; }").contains("invalid operands"));
    }

    #[test]
    fn heap_loads_are_gradually_typed() {
        // Loads unify with both int and ptr contexts.
        ok("fn f(ptr p) -> int { int x = p[0]; return x; }");
        ok("fn f(ptr p) -> ptr { ptr q = p[0]; return q; }");
        ok("fn f(ptr p) { p[0] = p[1]; p[2] = null; p[3] = 7; }");
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(fails("fn f() { break; }").contains("outside"));
        ok("fn f() { while (1) { break; } }");
    }

    #[test]
    fn rejects_return_mismatches() {
        assert!(fails("fn f() { return 1; }").contains("cannot return a value"));
        assert!(fails("fn f() -> int { return; }").contains("must return"));
        assert!(fails("fn f() -> int { return null; }").contains("returning"));
    }

    #[test]
    fn rejects_reserved_names() {
        assert!(fails("int alloc;").contains("reserved"));
        assert!(fails("fn print() {}").contains("collides"));
        assert!(fails("fn f() { int read; }").contains("reserved"));
        assert!(fails("fn f(int len) {}").contains("reserved"));
    }

    #[test]
    fn runtime_builtins_type_check() {
        ok("fn f(int s, ptr p, ptr q) { __check(s, p != null); __cmp(s, p, q); __obs_sign(s, 3); }");
        ok("fn f() -> int { return __next_cd(); }");
        assert!(fails("fn f(ptr p, int i) { __cmp(0, p, i); }").contains("matching types"));
    }

    #[test]
    fn store_checks() {
        assert!(fails("fn f(int x) { x[0] = 1; }").contains("not a pointer"));
        assert!(fails("fn f(ptr p, ptr q) { p[q] = 1; }").contains("index must be an integer"));
    }
}
