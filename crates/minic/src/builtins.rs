//! Builtin functions shared between the resolver and the VM.
//!
//! Two groups:
//!
//! * **user builtins** available to workload programs: heap management,
//!   scripted input, output, and early exit;
//! * **runtime builtins** (double-underscore names) that only instrumented
//!   code calls: counter updates for the three observation kinds and the
//!   next-sample countdown refill.  Workload sources never mention them; the
//!   instrumentation passes synthesize the calls.

use crate::ast::Type;

/// The reserved name of the global next-sample countdown variable
/// synthesized by the sampling transformation (§2.4 "global countdown").
pub const GLOBAL_COUNTDOWN: &str = "__gcd";

/// The reserved name of the per-function local countdown copy (§2.4).
pub const LOCAL_COUNTDOWN: &str = "__cd";

/// A builtin function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `alloc(n) -> ptr`: allocate a zeroed block of `n` cells.
    Alloc,
    /// `free(p)`: release a block (traps on corrupted canaries).
    Free,
    /// `len(p) -> int`: logical length of a block.
    Len,
    /// `read() -> int`: next value of the scripted input (0 at EOF).
    Read,
    /// `has_input() -> int`: 1 while scripted input remains, else 0.
    HasInput,
    /// `print(x)`: append an integer to the run's output log.
    Print,
    /// `exit(code)`: terminate the run successfully.
    Exit,
    /// `__check(site, cond)`: counted assertion; aborts the run when
    /// `cond` is false.  Two counters per site: `[violated, ok]`.
    ObsCheck,
    /// `__cmp(site, a, b)`: counted three-way comparison.  Three counters
    /// per site: `[a < b, a == b, a > b]`.
    ObsCmp,
    /// `__obs_sign(site, v)`: counted sign observation for function return
    /// values (§3.2.1).  Three counters: `[v < 0, v == 0, v > 0]`.
    ObsSign,
    /// `__next_cd() -> int`: refill the next-sample countdown from the
    /// run's countdown source.
    NextCountdown,
}

impl Builtin {
    /// Resolves a callee name to a builtin, if it is one.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "alloc" => Builtin::Alloc,
            "free" => Builtin::Free,
            "len" => Builtin::Len,
            "read" => Builtin::Read,
            "has_input" => Builtin::HasInput,
            "print" => Builtin::Print,
            "exit" => Builtin::Exit,
            "__check" => Builtin::ObsCheck,
            "__cmp" => Builtin::ObsCmp,
            "__obs_sign" => Builtin::ObsSign,
            "__next_cd" => Builtin::NextCountdown,
            _ => return None,
        })
    }

    /// The source-level name of this builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Alloc => "alloc",
            Builtin::Free => "free",
            Builtin::Len => "len",
            Builtin::Read => "read",
            Builtin::HasInput => "has_input",
            Builtin::Print => "print",
            Builtin::Exit => "exit",
            Builtin::ObsCheck => "__check",
            Builtin::ObsCmp => "__cmp",
            Builtin::ObsSign => "__obs_sign",
            Builtin::NextCountdown => "__next_cd",
        }
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Read | Builtin::HasInput | Builtin::NextCountdown => 0,
            Builtin::Alloc | Builtin::Free | Builtin::Len | Builtin::Print | Builtin::Exit => 1,
            Builtin::ObsCheck | Builtin::ObsSign => 2,
            Builtin::ObsCmp => 3,
        }
    }

    /// Return type, or `None` for effect-only builtins.
    pub fn ret(self) -> Option<Type> {
        match self {
            Builtin::Alloc => Some(Type::Ptr),
            Builtin::Len | Builtin::Read | Builtin::HasInput | Builtin::NextCountdown => {
                Some(Type::Int)
            }
            Builtin::Free
            | Builtin::Print
            | Builtin::Exit
            | Builtin::ObsCheck
            | Builtin::ObsCmp
            | Builtin::ObsSign => None,
        }
    }

    /// Whether this is an instrumentation-runtime builtin (reserved
    /// double-underscore namespace) rather than a user-facing one.
    pub fn is_runtime(self) -> bool {
        matches!(
            self,
            Builtin::ObsCheck | Builtin::ObsCmp | Builtin::ObsSign | Builtin::NextCountdown
        )
    }

    /// Whether calls to this builtin are *weightless* for the purposes of
    /// the interprocedural analysis of §2.3 — they contain no
    /// instrumentation sites and never touch the countdown, so acyclic
    /// regions may extend across them.
    ///
    /// Every builtin except [`Builtin::NextCountdown`] is weightless; the
    /// countdown refill by definition manipulates the countdown (it is only
    /// ever called from synthesized slow-path code anyway).
    pub fn is_weightless(self) -> bool {
        !matches!(self, Builtin::NextCountdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in [
            Builtin::Alloc,
            Builtin::Free,
            Builtin::Len,
            Builtin::Read,
            Builtin::HasInput,
            Builtin::Print,
            Builtin::Exit,
            Builtin::ObsCheck,
            Builtin::ObsCmp,
            Builtin::ObsSign,
            Builtin::NextCountdown,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("nonsense"), None);
    }

    #[test]
    fn arities_and_returns() {
        assert_eq!(Builtin::Alloc.arity(), 1);
        assert_eq!(Builtin::Alloc.ret(), Some(Type::Ptr));
        assert_eq!(Builtin::ObsCmp.arity(), 3);
        assert_eq!(Builtin::ObsCmp.ret(), None);
        assert_eq!(Builtin::Read.arity(), 0);
        assert_eq!(Builtin::Read.ret(), Some(Type::Int));
    }

    #[test]
    fn runtime_builtins_flagged() {
        assert!(Builtin::ObsCmp.is_runtime());
        assert!(Builtin::NextCountdown.is_runtime());
        assert!(!Builtin::Alloc.is_runtime());
        assert!(!Builtin::Print.is_runtime());
    }

    #[test]
    fn weightlessness() {
        assert!(Builtin::Alloc.is_weightless());
        assert!(Builtin::ObsCheck.is_weightless());
        assert!(!Builtin::NextCountdown.is_weightless());
    }
}
