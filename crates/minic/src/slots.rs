//! Slot lowering: dense variable indices for the interpreter hot path.
//!
//! The tree-walking VM historically kept every frame as a
//! `HashMap<String, Value>`, paying a string hash on each variable read
//! and write.  This pass performs the name resolution once, statically:
//! every local (parameter or declaration) of a function is assigned a
//! dense *slot* index, every global a dense global index, and every
//! callee is resolved to a builtin or a function index.  The VM can then
//! execute with `Vec`-indexed frames.
//!
//! The pass reuses the scope discipline of [`crate::resolve`]: frames are
//! function-flat (the resolver forbids shadowing, and a declaration is
//! visible for the remainder of the function once executed).  Crucially,
//! lowering is *purely syntactic* and total: it never rejects a program,
//! so even unresolved or deliberately ill-formed programs execute with
//! exactly the same dynamic behavior as the name-map interpreter —
//! including use-before-declaration traps and locals that fall back to a
//! same-named global until their declaration runs.  That is what
//! [`SlotRef`] encodes.

use crate::ast::*;
use crate::builtins::{Builtin, GLOBAL_COUNTDOWN};
use std::collections::HashMap;

/// A statically resolved variable reference.
///
/// MiniC name lookup is dynamic: the frame is consulted first, then the
/// globals, and a miss is a runtime trap.  A local binding only exists
/// once its declaration has executed, so a reference to a name that is
/// declared *somewhere* in the function may still resolve to a global (or
/// trap) at run time.  Each variant captures one statically decidable
/// shape of that search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotRef {
    /// Declared only in this function: read the frame slot, trap if the
    /// declaration has not executed yet.
    Local(u32),
    /// A global never shadowed in this function: direct global index.
    Global(u32),
    /// Declared locally *and* globally: frame slot if bound, else the
    /// global — exactly the frame-then-globals search order.
    LocalOrGlobal(u32, u32),
    /// No declaration anywhere: always a runtime trap (kept for parity
    /// with the name-map interpreter on unchecked programs).
    Undefined(Box<str>),
}

/// A statically resolved callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// A runtime builtin (builtins win over user functions, as in
    /// [`Builtin::from_name`]-first dispatch).
    Builtin(Builtin),
    /// Index into [`SlotProgram::functions`].
    Func(u32),
    /// Unknown callee: traps at call time.
    Undefined(Box<str>),
}

/// A lowered statement.  Mirrors [`Stmt`] with names resolved to slots
/// and the synthesized-span flag (which selects the flat bookkeeping
/// charge in the VM) precomputed where the interpreter consults it.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotStmt {
    /// Local declaration: binds the frame slot.
    Decl {
        /// Declared type (selects the zero value when uninitialized).
        ty: Type,
        /// Frame slot to bind.
        slot: u32,
        /// Optional initializer.
        init: Option<SlotExpr>,
        /// Whether the declaration was synthesized by instrumentation.
        synthesized: bool,
    },
    /// Assignment to an existing binding.
    Assign {
        /// Resolved target.
        target: SlotRef,
        /// Value expression.
        value: SlotExpr,
        /// Whether the assignment was synthesized by instrumentation.
        synthesized: bool,
    },
    /// Store through a pointer variable: `p[i] = e;`.
    Store {
        /// Resolved pointer variable.
        target: SlotRef,
        /// Index expression.
        index: SlotExpr,
        /// Value expression.
        value: SlotExpr,
    },
    /// Conditional.
    If {
        /// Condition (nonzero = true).
        cond: SlotExpr,
        /// Then branch.
        then_block: Vec<SlotStmt>,
        /// Optional else branch.
        else_block: Option<Vec<SlotStmt>>,
        /// Whether the conditional was synthesized by instrumentation.
        synthesized: bool,
    },
    /// Loop.
    While {
        /// Loop condition.
        cond: SlotExpr,
        /// Loop body.
        body: Vec<SlotStmt>,
    },
    /// `return e;` / `return;`.
    Return {
        /// Returned value, if any.
        value: Option<SlotExpr>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An un-lowered `check(...)` marker: inert at run time.
    Check,
    /// An expression evaluated for effect.
    Expr {
        /// The expression.
        expr: SlotExpr,
    },
}

/// A lowered expression.  Mirrors [`Expr`] with variables and callees
/// resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotExpr {
    /// Integer literal.
    Int(i64),
    /// The null pointer literal.
    Null,
    /// Resolved variable reference.
    Var(SlotRef),
    /// Heap load `p[i]`.
    Load {
        /// Pointer expression.
        ptr: Box<SlotExpr>,
        /// Index expression.
        index: Box<SlotExpr>,
    },
    /// Call with a resolved callee.
    Call {
        /// Resolved callee.
        callee: Callee,
        /// Actual arguments.
        args: Vec<SlotExpr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<SlotExpr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<SlotExpr>,
        /// Right operand.
        rhs: Box<SlotExpr>,
    },
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotFunction {
    /// Function name (diagnostics only).
    pub name: String,
    /// Number of parameters; they occupy slots `0..n_params`.
    pub n_params: u32,
    /// Total frame slots (parameters plus every declared local).
    pub n_slots: u32,
    /// Slot index → variable name, for trap messages.
    pub slot_names: Vec<String>,
    /// Return type, or `None` for procedures.
    pub ret: Option<Type>,
    /// Lowered body.
    pub body: Vec<SlotStmt>,
}

/// A lowered global.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotGlobal {
    /// Global name (diagnostics and countdown seeding).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Constant initializer for `int` globals (`ptr` globals start null).
    pub init: i64,
}

/// A whole program lowered to slot form: the unit the slot-resolved VM
/// engine executes.  Produce one with [`lower`] and share it freely —
/// lowering once per campaign amortizes the pass over thousands of
/// trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotProgram {
    /// Globals, in declaration order (their indices are [`SlotRef`]
    /// global indices).
    pub globals: Vec<SlotGlobal>,
    /// Lowered functions, in source order.
    pub functions: Vec<SlotFunction>,
    /// Index of `main` (the first function of that name), if any.
    pub main: Option<u32>,
    /// Index of the `__gcd` sampling countdown global, if present.
    pub gcd_global: Option<u32>,
}

/// Lowers a program to slot form.
///
/// Total — never fails, even on unresolved programs; statically
/// unresolvable names become [`SlotRef::Undefined`] / [`Callee::Undefined`]
/// and trap at run time exactly as the name-map interpreter does.
pub fn lower(program: &Program) -> SlotProgram {
    // Later duplicates win for call/global lookup, matching the name-map
    // interpreter's `HashMap::insert` environments (duplicates only occur
    // in unchecked programs).
    let mut global_idx: HashMap<&str, u32> = HashMap::new();
    for (i, g) in program.globals.iter().enumerate() {
        global_idx.insert(&g.name, i as u32);
    }
    let mut func_idx: HashMap<&str, u32> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        func_idx.insert(&f.name, i as u32);
    }

    let functions: Vec<SlotFunction> = program
        .functions
        .iter()
        .map(|f| lower_function(f, &global_idx, &func_idx))
        .collect();

    SlotProgram {
        globals: program
            .globals
            .iter()
            .map(|g| SlotGlobal {
                name: g.name.clone(),
                ty: g.ty,
                init: g.init,
            })
            .collect(),
        main: program
            .functions
            .iter()
            .position(|f| f.name == "main")
            .map(|i| i as u32),
        gcd_global: program
            .globals
            .iter()
            .position(|g| g.name == GLOBAL_COUNTDOWN)
            .map(|i| i as u32),
        functions,
    }
}

struct FnLowerer<'a> {
    /// Function-flat local slots, first declaration wins (re-declaration
    /// on instrumented dual paths reuses the slot, matching the name-map
    /// frame where `insert` overwrites).
    locals: HashMap<&'a str, u32>,
    slot_names: Vec<String>,
    globals: &'a HashMap<&'a str, u32>,
    funcs: &'a HashMap<&'a str, u32>,
}

fn lower_function(
    f: &Function,
    globals: &HashMap<&str, u32>,
    funcs: &HashMap<&str, u32>,
) -> SlotFunction {
    let mut lw = FnLowerer {
        locals: HashMap::new(),
        slot_names: Vec::new(),
        globals,
        funcs,
    };
    for p in &f.params {
        lw.slot_of(&p.name);
    }
    let n_params = lw.slot_names.len() as u32;
    // Pre-scan all declarations so n_slots is final before lowering; the
    // frame is function-flat, so order of assignment within the body is
    // irrelevant as long as it is deterministic (syntactic order).
    collect_decls(&f.body, &mut lw);
    let body = lw.block(&f.body);
    SlotFunction {
        name: f.name.clone(),
        n_params,
        n_slots: lw.slot_names.len() as u32,
        slot_names: lw.slot_names,
        ret: f.ret,
        body,
    }
}

fn collect_decls<'a>(b: &'a Block, lw: &mut FnLowerer<'a>) {
    for s in &b.stmts {
        match s {
            Stmt::Decl { name, .. } => {
                lw.slot_of(name);
            }
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                collect_decls(then_block, lw);
                if let Some(e) = else_block {
                    collect_decls(e, lw);
                }
            }
            Stmt::While { body, .. } => collect_decls(body, lw),
            _ => {}
        }
    }
}

impl<'a> FnLowerer<'a> {
    fn slot_of(&mut self, name: &'a str) -> u32 {
        if let Some(&s) = self.locals.get(name) {
            return s;
        }
        let s = self.slot_names.len() as u32;
        self.locals.insert(name, s);
        self.slot_names.push(name.to_string());
        s
    }

    fn var_ref(&self, name: &str) -> SlotRef {
        match (self.locals.get(name), self.globals.get(name)) {
            (Some(&l), Some(&g)) => SlotRef::LocalOrGlobal(l, g),
            (Some(&l), None) => SlotRef::Local(l),
            (None, Some(&g)) => SlotRef::Global(g),
            (None, None) => SlotRef::Undefined(name.into()),
        }
    }

    fn block(&mut self, b: &Block) -> Vec<SlotStmt> {
        b.stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> SlotStmt {
        let synthesized = s.span().is_synthesized();
        match s {
            Stmt::Decl { ty, name, init, .. } => SlotStmt::Decl {
                ty: *ty,
                slot: self
                    .locals
                    .get(name.as_str())
                    .copied()
                    .expect("pre-scan covers every declaration"),
                init: init.as_ref().map(|e| self.expr(e)),
                synthesized,
            },
            Stmt::Assign { name, value, .. } => SlotStmt::Assign {
                target: self.var_ref(name),
                value: self.expr(value),
                synthesized,
            },
            Stmt::Store {
                target,
                index,
                value,
                ..
            } => SlotStmt::Store {
                target: self.var_ref(target),
                index: self.expr(index),
                value: self.expr(value),
            },
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => SlotStmt::If {
                cond: self.expr(cond),
                then_block: self.block(then_block),
                else_block: else_block.as_ref().map(|e| self.block(e)),
                synthesized,
            },
            Stmt::While { cond, body, .. } => SlotStmt::While {
                cond: self.expr(cond),
                body: self.block(body),
            },
            Stmt::Return { value, .. } => SlotStmt::Return {
                value: value.as_ref().map(|e| self.expr(e)),
            },
            Stmt::Break { .. } => SlotStmt::Break,
            Stmt::Continue { .. } => SlotStmt::Continue,
            Stmt::Check { .. } => SlotStmt::Check,
            Stmt::Expr { expr, .. } => SlotStmt::Expr {
                expr: self.expr(expr),
            },
        }
    }

    fn expr(&mut self, e: &Expr) -> SlotExpr {
        match e {
            Expr::Int { value, .. } => SlotExpr::Int(*value),
            Expr::Null { .. } => SlotExpr::Null,
            Expr::Var { name, .. } => SlotExpr::Var(self.var_ref(name)),
            Expr::Load { ptr, index, .. } => SlotExpr::Load {
                ptr: Box::new(self.expr(ptr)),
                index: Box::new(self.expr(index)),
            },
            Expr::Call { name, args, .. } => {
                // Builtins shadow user functions, as in the interpreter's
                // builtin-first dispatch.
                let callee = match Builtin::from_name(name) {
                    Some(b) => Callee::Builtin(b),
                    None => match self.funcs.get(name.as_str()) {
                        Some(&i) => Callee::Func(i),
                        None => Callee::Undefined(name.as_str().into()),
                    },
                };
                SlotExpr::Call {
                    callee,
                    args: args.iter().map(|a| self.expr(a)).collect(),
                }
            }
            Expr::Unary { op, expr, .. } => SlotExpr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)),
            },
            Expr::Binary { op, lhs, rhs, .. } => SlotExpr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
        }
    }
}

impl SlotProgram {
    /// The name a [`SlotRef`] refers to, for trap messages, resolved
    /// against the given function's slot names.
    pub fn ref_name<'s>(&'s self, f: &'s SlotFunction, r: &'s SlotRef) -> &'s str {
        match r {
            SlotRef::Local(s) | SlotRef::LocalOrGlobal(s, _) => &f.slot_names[*s as usize],
            SlotRef::Global(g) => &self.globals[*g as usize].name,
            SlotRef::Undefined(name) => name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn lowered(src: &str) -> SlotProgram {
        lower(&parse(src).unwrap())
    }

    #[test]
    fn params_then_locals_get_dense_slots() {
        let p = lowered(
            "fn f(int a, ptr b) -> int { int c = 1; if (a) { int d; } return c; }\n\
             fn main() -> int { return f(1, null); }",
        );
        let f = &p.functions[0];
        assert_eq!(f.n_params, 2);
        assert_eq!(f.n_slots, 4);
        assert_eq!(f.slot_names, vec!["a", "b", "c", "d"]);
        assert_eq!(p.main, Some(1));
    }

    #[test]
    fn locals_shadowing_globals_fall_back_dynamically() {
        // Unresolvable by the strict resolver, but must lower to the
        // frame-then-global search the interpreter performs.
        let p = lowered("int x = 7; fn main() -> int { int x = 1; return x; }");
        let f = &p.functions[0];
        let decl_slot = match &f.body[0] {
            SlotStmt::Decl { slot, .. } => *slot,
            other => panic!("expected decl, got {other:?}"),
        };
        match &f.body[1] {
            SlotStmt::Return {
                value: Some(SlotExpr::Var(SlotRef::LocalOrGlobal(l, g))),
            } => {
                assert_eq!(*l, decl_slot);
                assert_eq!(*g, 0);
            }
            other => panic!("expected local-or-global return, got {other:?}"),
        }
    }

    #[test]
    fn callees_resolve_to_builtin_function_or_undefined() {
        let p = lowered("fn g() { } fn main() -> int { g(); print(1); h(); return 0; }");
        let main = &p.functions[1];
        let callees: Vec<&Callee> = main
            .body
            .iter()
            .filter_map(|s| match s {
                SlotStmt::Expr {
                    expr: SlotExpr::Call { callee, .. },
                } => Some(callee),
                _ => None,
            })
            .collect();
        assert_eq!(callees.len(), 3);
        assert_eq!(*callees[0], Callee::Func(0));
        assert_eq!(*callees[1], Callee::Builtin(Builtin::Print));
        assert_eq!(*callees[2], Callee::Undefined("h".into()));
    }

    #[test]
    fn undefined_variables_lower_without_failing() {
        let p = lowered("fn main() -> int { return nowhere; }");
        match &p.functions[0].body[0] {
            SlotStmt::Return {
                value: Some(SlotExpr::Var(SlotRef::Undefined(n))),
            } => assert_eq!(&**n, "nowhere"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gcd_global_is_found() {
        let p = lowered("int __gcd = 0; fn main() -> int { return 0; }");
        assert_eq!(p.gcd_global, Some(0));
        assert_eq!(lowered("fn main() -> int { return 0; }").gcd_global, None);
    }

    #[test]
    fn ref_name_reports_original_names() {
        let p = lowered("int g; fn main() -> int { int l = g; return l; }");
        let f = &p.functions[0];
        assert_eq!(p.ref_name(f, &SlotRef::Local(0)), "l");
        assert_eq!(p.ref_name(f, &SlotRef::Global(0)), "g");
        assert_eq!(p.ref_name(f, &SlotRef::Undefined("z".into())), "z");
    }
}
