//! The MiniC abstract syntax tree.
//!
//! MiniC is deliberately small but covers everything the sampling
//! transformation of the paper manipulates: functions, structured control
//! flow (`if`/`while`), scalar (`int`) and pointer (`ptr`) variables, heap
//! loads/stores, calls, and `check(...)` assertion sites.
//!
//! AST types are passive data structures with public fields: the
//! instrumentation crate rewrites them wholesale, and the VM walks them.

use crate::span::Span;
use std::fmt;

/// A MiniC value type: 64-bit integers or heap pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Pointer into the VM heap (block + offset), or null.
    Ptr,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Ptr => f.write_str("ptr"),
        }
    }
}

/// A whole program: globals plus functions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global variable declarations, initialized before `main` runs.
    pub globals: Vec<Global>,
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Constant initializer for `int` globals (`ptr` globals start null).
    pub init: i64,
    /// Declaration site.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type, or `None` for procedures.
    pub ret: Option<Type>,
    /// Function body.
    pub body: Block,
    /// Definition site.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Declaration site.
    pub span: Span,
}

/// A block of statements (one lexical scope).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    /// An empty block.
    pub fn empty() -> Self {
        Block { stmts: Vec::new() }
    }
}

/// A MiniC statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration: `int x = e;` / `ptr p;`.
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Optional initializer (defaults to `0` / `null`).
        init: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// Assignment to a variable: `x = e;`.
    Assign {
        /// Target variable name.
        name: String,
        /// Value expression.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// Store through a pointer variable: `p[i] = e;`.
    Store {
        /// Pointer variable name.
        target: String,
        /// Index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// Conditional: `if (c) { … } else { … }`.
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
        /// Source position.
        span: Span,
    },
    /// Loop: `while (c) { … }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source position.
        span: Span,
    },
    /// `return e;` or `return;`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// `break;`
    Break {
        /// Source position.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Source position.
        span: Span,
    },
    /// A user-written assertion site: `check(e);`.
    ///
    /// In uninstrumented execution this is a no-op marker; instrumentation
    /// lowers it to a counted, possibly sampled runtime check.
    Check {
        /// Asserted condition.
        cond: Expr,
        /// Source position.
        span: Span,
    },
    /// An expression evaluated for effect (a call): `f(x);`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Source position.
        span: Span,
    },
}

impl Stmt {
    /// The source position of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Store { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break { span }
            | Stmt::Continue { span }
            | Stmt::Check { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e` (yields 0/1).
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("!"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (also pointer + int offset arithmetic).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (traps on divide-by-zero at run time).
    Div,
    /// `%` (traps on zero modulus at run time).
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

impl BinOp {
    /// Whether this operator produces a 0/1 truth value.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator short-circuits.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// A MiniC expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int {
        /// The value.
        value: i64,
        /// Source position.
        span: Span,
    },
    /// The null pointer literal.
    Null {
        /// Source position.
        span: Span,
    },
    /// Variable reference.
    Var {
        /// Variable name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// Heap load: `p[i]`.
    Load {
        /// Pointer expression.
        ptr: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Function or builtin call: `f(a, b)`.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source position.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        span: Span,
    },
}

impl Expr {
    /// The source position of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int { span, .. }
            | Expr::Null { span }
            | Expr::Var { span, .. }
            | Expr::Load { span, .. }
            | Expr::Call { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. } => *span,
        }
    }

    /// Convenience constructor: integer literal with a synthesized span.
    pub fn int(value: i64) -> Expr {
        Expr::Int {
            value,
            span: Span::synthesized(),
        }
    }

    /// Convenience constructor: variable reference with a synthesized span.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var {
            name: name.into(),
            span: Span::synthesized(),
        }
    }

    /// Convenience constructor: call with a synthesized span.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
            span: Span::synthesized(),
        }
    }

    /// Convenience constructor: binary operation with a synthesized span.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span: Span::synthesized(),
        }
    }

    /// Whether any subexpression satisfies `pred`.
    pub fn any(&self, pred: &mut dyn FnMut(&Expr) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        match self {
            Expr::Int { .. } | Expr::Null { .. } | Expr::Var { .. } => false,
            Expr::Load { ptr, index, .. } => ptr.any(pred) || index.any(pred),
            Expr::Call { args, .. } => args.iter().any(|a| a.any(pred)),
            Expr::Unary { expr, .. } => expr.any(pred),
            Expr::Binary { lhs, rhs, .. } => lhs.any(pred) || rhs.any(pred),
        }
    }

    /// Collects the names of functions called anywhere in this expression.
    pub fn called_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int { .. } | Expr::Null { .. } | Expr::Var { .. } => {}
            Expr::Load { ptr, index, .. } => {
                ptr.called_names(out);
                index.called_names(out);
            }
            Expr::Call { name, args, .. } => {
                out.push(name.clone());
                for a in args {
                    a.called_names(out);
                }
            }
            Expr::Unary { expr, .. } => expr.called_names(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.called_names(out);
                rhs.called_names(out);
            }
        }
    }
}

/// Counts AST nodes (statements + expressions) in a block — the code-size
/// metric used for the executable-growth measurements of §3.1.2.
pub fn block_size(block: &Block) -> usize {
    block.stmts.iter().map(stmt_size).sum()
}

/// Counts AST nodes in one statement.
pub fn stmt_size(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::Decl { init, .. } => init.as_ref().map_or(0, expr_size),
        Stmt::Assign { value, .. } => expr_size(value),
        Stmt::Store { index, value, .. } => expr_size(index) + expr_size(value),
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => expr_size(cond) + block_size(then_block) + else_block.as_ref().map_or(0, block_size),
        Stmt::While { cond, body, .. } => expr_size(cond) + block_size(body),
        Stmt::Return { value, .. } => value.as_ref().map_or(0, expr_size),
        Stmt::Break { .. } | Stmt::Continue { .. } => 0,
        Stmt::Check { cond, .. } => expr_size(cond),
        Stmt::Expr { expr, .. } => expr_size(expr),
    }
}

/// Counts AST nodes in one expression.
pub fn expr_size(expr: &Expr) -> usize {
    1 + match expr {
        Expr::Int { .. } | Expr::Null { .. } | Expr::Var { .. } => 0,
        Expr::Load { ptr, index, .. } => expr_size(ptr) + expr_size(index),
        Expr::Call { args, .. } => args.iter().map(expr_size).sum(),
        Expr::Unary { expr, .. } => expr_size(expr),
        Expr::Binary { lhs, rhs, .. } => expr_size(lhs) + expr_size(rhs),
    }
}

/// Counts AST nodes in a whole function (body plus header).
pub fn function_size(f: &Function) -> usize {
    1 + f.params.len() + block_size(&f.body)
}

/// Counts AST nodes in a whole program.
pub fn program_size(p: &Program) -> usize {
    p.globals.len() + p.functions.iter().map(function_size).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::synthesized()
    }

    #[test]
    fn expr_constructors_build_expected_shapes() {
        let e = Expr::binary(BinOp::Add, Expr::int(1), Expr::var("x"));
        assert_eq!(expr_size(&e), 3);
        match e {
            Expr::Binary { op: BinOp::Add, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn called_names_walks_nested_expressions() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::call("f", vec![Expr::call("g", vec![])]),
            Expr::Load {
                ptr: Box::new(Expr::call("h", vec![])),
                index: Box::new(Expr::int(0)),
                span: sp(),
            },
        );
        let mut names = Vec::new();
        e.called_names(&mut names);
        assert_eq!(names, vec!["f", "g", "h"]);
    }

    #[test]
    fn any_finds_matching_subexpression() {
        let e = Expr::binary(BinOp::Mul, Expr::int(2), Expr::var("y"));
        assert!(e.any(&mut |x| matches!(x, Expr::Var { name, .. } if name == "y")));
        assert!(!e.any(&mut |x| matches!(x, Expr::Null { .. })));
    }

    #[test]
    fn sizes_count_every_node() {
        // while (x < 10) { x = x + 1; }
        let body = Block::new(vec![Stmt::Assign {
            name: "x".into(),
            value: Expr::binary(BinOp::Add, Expr::var("x"), Expr::int(1)),
            span: sp(),
        }]);
        let w = Stmt::While {
            cond: Expr::binary(BinOp::Lt, Expr::var("x"), Expr::int(10)),
            body,
            span: sp(),
        };
        // while(1) + cond(3) + assign(1) + value(3) = 8
        assert_eq!(stmt_size(&w), 8);
    }

    #[test]
    fn program_lookup_by_name() {
        let p = Program {
            globals: vec![Global {
                name: "g".into(),
                ty: Type::Int,
                init: 7,
                span: sp(),
            }],
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                ret: Some(Type::Int),
                body: Block::empty(),
                span: sp(),
            }],
        };
        assert!(p.function("main").is_some());
        assert!(p.function("missing").is_none());
        assert_eq!(p.global("g").unwrap().init, 7);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }

    #[test]
    fn display_for_types_and_ops() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(BinOp::Ge.to_string(), ">=");
        assert_eq!(UnOp::Not.to_string(), "!");
    }
}
