//! Source positions.
//!
//! Predicates reported by the statistical debugging analyses are named by
//! source location (the paper prints e.g. `traverse.c:320`), so every token
//! and AST node carries a [`Span`].

use std::fmt;

/// A position range in a source file: 1-based line and column of the start,
//  plus the byte offsets for precise slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// A span for synthesized (instrumentation-generated) code.
    pub fn synthesized() -> Self {
        Span { line: 0, col: 0 }
    }

    /// Whether this span refers to synthesized rather than user code.
    pub fn is_synthesized(self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthesized() {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_line_and_column() {
        assert_eq!(Span::new(320, 7).to_string(), "320:7");
    }

    #[test]
    fn synthesized_spans_are_marked() {
        let s = Span::synthesized();
        assert!(s.is_synthesized());
        assert_eq!(s.to_string(), "<synthesized>");
        assert!(!Span::new(1, 1).is_synthesized());
    }

    #[test]
    fn spans_order_by_position() {
        assert!(Span::new(1, 9) < Span::new(2, 1));
        assert!(Span::new(3, 1) < Span::new(3, 2));
    }
}
