//! Tokens produced by the MiniC lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is (and its payload, for literals/idents).
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

/// The kinds of MiniC tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// An identifier, e.g. `more_arrays`.
    Ident(String),

    // Keywords.
    /// `int`
    KwInt,
    /// `ptr`
    KwPtr,
    /// `fn`
    KwFn,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `null`
    KwNull,
    /// `check`
    KwCheck,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Looks up the keyword for an identifier-shaped lexeme, if any.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "int" => TokenKind::KwInt,
            "ptr" => TokenKind::KwPtr,
            "fn" => TokenKind::KwFn,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "null" => TokenKind::KwNull,
            "check" => TokenKind::KwCheck,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Int(v) => return write!(f, "{v}"),
            TokenKind::Ident(name) => return write!(f, "{name}"),
            TokenKind::KwInt => "int",
            TokenKind::KwPtr => "ptr",
            TokenKind::KwFn => "fn",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwReturn => "return",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::KwNull => "null",
            TokenKind::KwCheck => "check",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Arrow => "->",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("check"), Some(TokenKind::KwCheck));
        assert_eq!(TokenKind::keyword("banana"), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::Arrow.to_string(), "->");
        assert_eq!(TokenKind::Le.to_string(), "<=");
        assert_eq!(TokenKind::Int(42).to_string(), "42");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "x");
    }
}
