//! MiniC: the instrumentation substrate language.
//!
//! The PLDI 2003 paper implements its sampling transformation as a
//! source-to-source rewrite of C programs.  This crate provides the
//! equivalent substrate for the reproduction: a small C-like language with
//! functions, `int`/`ptr` variables, structured control flow, heap
//! loads/stores, calls, and `check(...)` assertion sites.
//!
//! The pipeline is:
//!
//! 1. [`parse`] source text into an [`ast::Program`];
//! 2. [`resolve()`](resolve()) it, obtaining static [`resolve::ProgramInfo`] (types of
//!    every variable, function signatures) and rejecting ill-formed code;
//! 3. hand the program to `cbi-instrument` for site insertion and the
//!    sampling transformation, and to `cbi-vm` for execution;
//! 4. optionally [`pretty()`](pretty())-print any (possibly transformed) program back
//!    to source.
//!
//! # Example
//!
//! ```
//! use cbi_minic::{parse, resolve, pretty};
//!
//! let program = parse("fn main() -> int { int x = 2 + 3; return x; }")?;
//! let info = resolve(&program)?;
//! assert!(info.signatures.contains_key("main"));
//! assert!(pretty(&program).contains("2 + 3"));
//! # Ok::<(), cbi_minic::MiniCError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod slots;
pub mod span;
pub mod token;

pub use ast::{BinOp, Block, Expr, Function, Global, Param, Program, Stmt, Type, UnOp};
pub use builtins::Builtin;
pub use parser::parse;
pub use pretty::{pretty, pretty_function, print_expr};
pub use resolve::{resolve, resolve_relaxed, FnSig, ProgramInfo};
pub use slots::{lower, SlotProgram};
pub use span::Span;

use std::error::Error;
use std::fmt;

/// An error from the MiniC front end, carrying the phase, position, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniCError {
    phase: Phase,
    span: Span,
    message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Lex,
    Parse,
    Resolve,
}

impl MiniCError {
    pub(crate) fn lex(span: Span, message: impl Into<String>) -> Self {
        MiniCError {
            phase: Phase::Lex,
            span,
            message: message.into(),
        }
    }

    pub(crate) fn parse(span: Span, message: impl Into<String>) -> Self {
        MiniCError {
            phase: Phase::Parse,
            span,
            message: message.into(),
        }
    }

    pub(crate) fn resolve(span: Span, message: impl Into<String>) -> Self {
        MiniCError {
            phase: Phase::Resolve,
            span,
            message: message.into(),
        }
    }

    /// The source position the error refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The error message without position prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for MiniCError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Resolve => "resolve",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl Error for MiniCError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_phase_and_span() {
        let e = MiniCError::parse(Span::new(3, 7), "boom");
        assert_eq!(e.to_string(), "parse error at 3:7: boom");
        assert_eq!(e.span(), Span::new(3, 7));
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn full_front_end_pipeline() {
        let src = "int total = 0;\n\
                   fn bump(int d) { total = total + d; }\n\
                   fn main() -> int { bump(3); bump(4); return total; }";
        let program = parse(src).unwrap();
        let info = resolve(&program).unwrap();
        assert_eq!(info.signatures["bump"].params.len(), 1);
        let printed = pretty(&program);
        let reparsed = parse(&printed).unwrap();
        assert!(resolve(&reparsed).is_ok());
    }
}
