//! Pretty-printer: renders an AST back to parseable MiniC source.
//!
//! Instrumentation is a source-to-source transformation (like the paper's
//! C-to-C translator), so being able to inspect transformed programs as
//! ordinary source is invaluable for debugging and for the examples.
//! `parse(pretty(ast))` yields a structurally identical AST.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as MiniC source.
///
/// ```
/// let p = cbi_minic::parse("fn main() -> int { return 1 + 2; }").unwrap();
/// let src = cbi_minic::pretty(&p);
/// assert!(src.contains("return 1 + 2;"));
/// ```
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        if g.ty == Type::Int && g.init != 0 {
            let _ = writeln!(out, "{} {} = {};", g.ty, g.name, g.init);
        } else {
            let _ = writeln!(out, "{} {};", g.ty, g.name);
        }
    }
    if !program.globals.is_empty() {
        out.push('\n');
    }
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

/// Renders a single function as MiniC source.
pub fn pretty_function(f: &Function) -> String {
    let mut out = String::new();
    print_function(&mut out, f);
    out
}

fn print_function(out: &mut String, f: &Function) {
    let _ = write!(out, "fn {}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.ty, p.name);
    }
    out.push(')');
    if let Some(t) = f.ret {
        let _ = write!(out, " -> {t}");
    }
    out.push_str(" {\n");
    print_block_body(out, &f.body, 1);
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block_body(out: &mut String, b: &Block, level: usize) {
    for s in &b.stmts {
        print_stmt(out, s, level);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Decl { ty, name, init, .. } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                let _ = write!(out, " = {}", print_expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign { name, value, .. } => {
            let _ = writeln!(out, "{name} = {};", print_expr(value));
        }
        Stmt::Store {
            target,
            index,
            value,
            ..
        } => {
            let _ = writeln!(
                out,
                "{target}[{}] = {};",
                print_expr(index),
                print_expr(value)
            );
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block_body(out, then_block, level + 1);
            indent(out, level);
            match else_block {
                None => out.push_str("}\n"),
                Some(e) => {
                    out.push_str("} else {\n");
                    print_block_body(out, e, level + 1);
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block_body(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => match value {
            None => out.push_str("return;\n"),
            Some(v) => {
                let _ = writeln!(out, "return {};", print_expr(v));
            }
        },
        Stmt::Break { .. } => out.push_str("break;\n"),
        Stmt::Continue { .. } => out.push_str("continue;\n"),
        Stmt::Check { cond, .. } => {
            let _ = writeln!(out, "check({});", print_expr(cond));
        }
        Stmt::Expr { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

/// Renders an expression with explicit parentheses where precedence needs
/// them.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn op_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | Ne => 3,
        Lt | Le | Gt | Ge => 4,
        Add | Sub => 5,
        Mul | Div | Mod => 6,
    }
}

fn print_prec(e: &Expr, min: u8) -> String {
    match e {
        Expr::Int { value, .. } => {
            if *value < 0 {
                // Negative literals re-parse through unary minus folding;
                // parenthesize so `1 - -2` stays unambiguous.
                format!("(-{})", value.unsigned_abs())
            } else {
                value.to_string()
            }
        }
        Expr::Null { .. } => "null".to_string(),
        Expr::Var { name, .. } => name.clone(),
        Expr::Load { ptr, index, .. } => {
            format!("{}[{}]", print_prec(ptr, 8), print_expr(index))
        }
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Unary { op, expr, .. } => {
            format!("{op}{}", print_prec(expr, 7))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let p = op_prec(*op);
            // Left-associative: the right operand needs strictly higher
            // binding power.
            let s = format!("{} {op} {}", print_prec(lhs, p), print_prec(rhs, p + 1));
            if p < min {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Structural equality ignoring spans: compare pretty-printed forms of
    /// re-parsed sources.
    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let s1 = pretty(&p1);
        let p2 = parse(&s1).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{s1}"));
        let s2 = pretty(&p2);
        assert_eq!(s1, s2, "pretty-printing must be a fixed point");
    }

    #[test]
    fn round_trips_simple_function() {
        round_trip("fn main() -> int { return 0; }");
    }

    #[test]
    fn round_trips_globals() {
        round_trip("int a = 5; int b; ptr p; fn main() -> int { return a; }");
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "fn f(int n) -> int { int s = 0; int i = 0; while (i < n) { if (i % 2 == 0) { s = s + i; } else { s = s - 1; } i = i + 1; } return s; }",
        );
    }

    #[test]
    fn round_trips_pointers_and_checks() {
        round_trip(
            "fn f(ptr p, int i) -> int { check(p != null); check(i >= 0 && i < len(p)); p[i] = p[i + 1]; return p[i]; }",
        );
    }

    #[test]
    fn parenthesizes_precedence_correctly() {
        // (1 + 2) * 3 must keep its parentheses.
        let p = parse("fn f() -> int { return (1 + 2) * 3; }").unwrap();
        let s = pretty(&p);
        assert!(s.contains("(1 + 2) * 3"), "got: {s}");
        round_trip("fn f() -> int { return (1 + 2) * 3; }");
    }

    #[test]
    fn preserves_logical_structure() {
        let p = parse("fn f(int a, int b) -> int { return (a || b) && a; }").unwrap();
        let s = pretty(&p);
        assert!(s.contains("(a || b) && a"), "got: {s}");
    }

    #[test]
    fn negative_literal_round_trips() {
        round_trip("fn f() -> int { return 1 - -2; }");
        let p = parse("fn f() -> int { return 1 - -2; }").unwrap();
        let p2 = parse(&pretty(&p)).unwrap();
        // Semantics preserved: both parse to subtraction by negative two.
        assert_eq!(pretty(&p), pretty(&p2));
    }

    #[test]
    fn unary_binds_tighter_than_binary() {
        round_trip("fn f(int x) -> int { return -x * !x; }");
    }

    #[test]
    fn round_trips_else_if_chain() {
        round_trip(
            "fn f(int x) -> int { if (x < 0) { return -1; } else if (x == 0) { return 0; } else { return 1; } }",
        );
    }

    #[test]
    fn prints_calls_and_nested_loads() {
        round_trip("fn f(ptr p) -> int { return p[0][g(p[1], 2)]; } fn g(ptr q, int i) -> int { return q[i]; }");
    }
}
