//! Recursive-descent parser for MiniC.
//!
//! Grammar (EBNF, `*` = repetition, `?` = optional):
//!
//! ```text
//! program  := (global | function)*
//! global   := type ident ("=" "-"? INT)? ";"
//! function := "fn" ident "(" (param ("," param)*)? ")" ("->" type)? block
//! param    := type ident
//! type     := "int" | "ptr"
//! block    := "{" stmt* "}"
//! stmt     := type ident ("=" expr)? ";"
//!           | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!           | "while" "(" expr ")" block
//!           | "return" expr? ";"
//!           | "break" ";" | "continue" ";"
//!           | "check" "(" expr ")" ";"
//!           | expr ("=" expr)? ";"        -- assignment or effect call
//! expr     := or-expr, with C precedence: || < && < ==/!= < relational
//!             < +/- < * / % < unary -/! < postfix [index] < primary
//! primary  := INT | "null" | ident ("(" args ")")? | "(" expr ")"
//! ```

use crate::ast::*;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::MiniCError;

/// Parses MiniC source text into a [`Program`].
///
/// # Errors
///
/// Returns [`MiniCError`] describing the first lexical or syntactic problem.
///
/// ```
/// let prog = cbi_minic::parse("fn main() -> int { return 0; }").unwrap();
/// assert_eq!(prog.functions.len(), 1);
/// ```
pub fn parse(source: &str) -> Result<Program, MiniCError> {
    let tokens = lex(source)?;
    Parser::new(tokens).program()
}

/// Maximum combined statement/expression nesting depth.  Recursive
/// descent consumes native stack per level; beyond this bound the input
/// is rejected with an error instead of overflowing.  The bound is sized
/// so that even unoptimized builds stay within a 2 MiB thread stack.
const MAX_NESTING: usize = 100;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<(), MiniCError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            Err(self.error("nesting too deep"))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, MiniCError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, message: impl Into<String>) -> MiniCError {
        MiniCError::parse(self.peek_span(), message)
    }

    fn ident(&mut self) -> Result<(String, Span), MiniCError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn ty(&mut self) -> Result<Type, MiniCError> {
        match self.peek() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::KwPtr => {
                self.bump();
                Ok(Type::Ptr)
            }
            other => Err(self.error(format!("expected type `int` or `ptr`, found `{other}`"))),
        }
    }

    fn program(&mut self) -> Result<Program, MiniCError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwFn => functions.push(self.function()?),
                TokenKind::KwInt | TokenKind::KwPtr => globals.push(self.global()?),
                other => {
                    return Err(self.error(format!(
                        "expected `fn` or a global declaration at top level, found `{other}`"
                    )))
                }
            }
        }
        Ok(Program { globals, functions })
    }

    fn global(&mut self) -> Result<Global, MiniCError> {
        let span = self.peek_span();
        let ty = self.ty()?;
        let (name, _) = self.ident()?;
        let mut init = 0;
        if self.eat(&TokenKind::Assign) {
            if ty == Type::Ptr {
                return Err(
                    self.error("pointer globals cannot have initializers (they start null)")
                );
            }
            let neg = self.eat(&TokenKind::Minus);
            match self.peek().clone() {
                TokenKind::Int(v) => {
                    self.bump();
                    init = if neg { -v } else { v };
                }
                other => {
                    return Err(self.error(format!(
                        "global initializer must be an integer literal, found `{other}`"
                    )))
                }
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Global {
            name,
            ty,
            init,
            span,
        })
    }

    fn function(&mut self) -> Result<Function, MiniCError> {
        let span = self.peek_span();
        self.expect(&TokenKind::KwFn)?;
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let pspan = self.peek_span();
                let ty = self.ty()?;
                let (pname, _) = self.ident()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Block, MiniCError> {
        self.enter()?;
        let result = self.block_inner();
        self.leave();
        result
    }

    fn block_inner(&mut self) -> Result<Block, MiniCError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block::new(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, MiniCError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::KwInt | TokenKind::KwPtr => {
                let ty = self.ty()?;
                let (name, _) = self.ident()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Decl {
                    ty,
                    name,
                    init,
                    span,
                })
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break { span })
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue { span })
            }
            TokenKind::KwCheck => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Check { cond, span })
            }
            _ => self.expr_led_stmt(span),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, MiniCError> {
        let span = self.peek_span();
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_block = self.block()?;
        let else_block = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                // `else if` chains desugar to a nested single-statement block.
                let nested = self.if_stmt()?;
                Some(Block::new(vec![nested]))
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
            span,
        })
    }

    /// Statements that begin with an expression: assignment `x = e;`,
    /// store `p[i] = e;`, or an effect call `f(x);`.
    fn expr_led_stmt(&mut self, span: Span) -> Result<Stmt, MiniCError> {
        let lhs = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            match lhs {
                Expr::Var { name, .. } => Ok(Stmt::Assign { name, value, span }),
                Expr::Load { ptr, index, .. } => match *ptr {
                    Expr::Var { name, .. } => Ok(Stmt::Store {
                        target: name,
                        index: *index,
                        value,
                        span,
                    }),
                    _ => Err(MiniCError::parse(
                        span,
                        "store target must be a pointer variable, e.g. `p[i] = e;`",
                    )),
                },
                _ => Err(MiniCError::parse(
                    span,
                    "assignment target must be a variable or `p[i]`",
                )),
            }
        } else {
            self.expect(&TokenKind::Semi)?;
            match &lhs {
                Expr::Call { .. } => Ok(Stmt::Expr { expr: lhs, span }),
                _ => Err(MiniCError::parse(
                    span,
                    "only call expressions may be used as statements",
                )),
            }
        }
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr, MiniCError> {
        self.enter()?;
        let result = self.or_expr();
        self.leave();
        result
    }

    fn or_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::OrOr {
            let span = self.peek_span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut lhs = self.equality_expr()?;
        while self.peek() == &TokenKind::AndAnd {
            let span = self.peek_span();
            self.bump();
            let rhs = self.equality_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            let span = self.peek_span();
            self.bump();
            let rhs = self.relational_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            let span = self.peek_span();
            self.bump();
            let rhs = self.additive_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.peek_span();
            self.bump();
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            let span = self.peek_span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, MiniCError> {
        let span = self.peek_span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let expr = self.unary_expr()?;
                // Fold negation of literals so `-5` is a literal, which
                // matters for constant contexts and pretty-printing.
                if let Expr::Int { value, .. } = expr {
                    return Ok(Expr::Int {
                        value: -value,
                        span,
                    });
                }
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                    span,
                })
            }
            TokenKind::Bang => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, MiniCError> {
        let mut e = self.primary_expr()?;
        while self.peek() == &TokenKind::LBracket {
            let span = self.peek_span();
            self.bump();
            let index = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            e = Expr::Load {
                ptr: Box::new(e),
                index: Box::new(index),
                span,
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, MiniCError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Int { value, span })
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr::Null { span })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Var { name, span })
                }
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_empty_program() {
        let p = parse_ok("");
        assert!(p.functions.is_empty());
        assert!(p.globals.is_empty());
    }

    #[test]
    fn parses_globals_with_initializers() {
        let p = parse_ok("int a = 5; int b = -3; int c; ptr q;");
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.global("a").unwrap().init, 5);
        assert_eq!(p.global("b").unwrap().init, -3);
        assert_eq!(p.global("c").unwrap().init, 0);
        assert_eq!(p.global("q").unwrap().ty, Type::Ptr);
    }

    #[test]
    fn rejects_pointer_global_initializer() {
        assert!(parse("ptr q = 5;").is_err());
    }

    #[test]
    fn parses_function_signature() {
        let p = parse_ok("fn add(int a, int b) -> int { return a + b; }");
        let f = p.function("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Type::Int));
    }

    #[test]
    fn parses_procedure_without_return_type() {
        let p = parse_ok("fn go() { return; }");
        assert_eq!(p.function("go").unwrap().ret, None);
    }

    #[test]
    fn precedence_binds_mul_tighter_than_add() {
        let p = parse_ok("fn f() -> int { return 1 + 2 * 3; }");
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Return {
                value:
                    Some(Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    }),
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_relational_below_arithmetic() {
        let p = parse_ok("fn f(int x) -> int { return x + 1 < x * 2; }");
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Return {
                value: Some(Expr::Binary { op: BinOp::Lt, .. }),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn logical_operators_lowest_precedence() {
        let p = parse_ok("fn f(int x) -> int { return x == 1 || x == 2 && x < 9; }");
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Return {
                value:
                    Some(Expr::Binary {
                        op: BinOp::Or, rhs, ..
                    }),
                ..
            } => assert!(matches!(**rhs, Expr::Binary { op: BinOp::And, .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse_ok(
            "fn f(int x) -> int { if (x < 0) { return -1; } else if (x == 0) { return 0; } else { return 1; } }",
        );
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::If {
                else_block: Some(b),
                ..
            } => {
                assert!(matches!(b.stmts[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_while_with_break_continue() {
        let p = parse_ok(
            "fn f() { int i = 0; while (i < 10) { i = i + 1; if (i == 3) { continue; } if (i == 7) { break; } } }",
        );
        assert!(p.function("f").is_some());
    }

    #[test]
    fn parses_store_and_load() {
        let p = parse_ok("fn f(ptr p) -> int { p[0] = p[1] + 2; return p[0]; }");
        let f = p.function("f").unwrap();
        assert!(matches!(&f.body.stmts[0], Stmt::Store { target, .. } if target == "p"));
    }

    #[test]
    fn parses_nested_index_chains() {
        let p = parse_ok("fn f(ptr p) -> int { return p[0][1]; }");
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Return {
                value: Some(Expr::Load { ptr, .. }),
                ..
            } => {
                assert!(matches!(**ptr, Expr::Load { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_store_through_computed_pointer() {
        assert!(parse("fn f(ptr p) { (p)[0][1] = 2; }").is_err());
    }

    #[test]
    fn parses_calls_with_arguments() {
        let p = parse_ok("fn f() { g(1, 2 + 3, h()); }");
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Expr {
                expr: Expr::Call { name, args, .. },
                ..
            } => {
                assert_eq!(name, "g");
                assert_eq!(args.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        assert!(parse("fn f(int x) { x + 1; }").is_err());
    }

    #[test]
    fn parses_check_statement() {
        let p = parse_ok("fn f(ptr p, int i) { check(p != null); check(i < 10); }");
        let f = p.function("f").unwrap();
        assert!(matches!(f.body.stmts[0], Stmt::Check { .. }));
        assert!(matches!(f.body.stmts[1], Stmt::Check { .. }));
    }

    #[test]
    fn folds_negative_literals() {
        let p = parse_ok("fn f() -> int { return -42; }");
        let f = p.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Return {
                value: Some(Expr::Int { value: -42, .. }),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn local_declarations_with_and_without_init() {
        let p = parse_ok("fn f() { int x; int y = 2; ptr p; ptr q = alloc(4); }");
        let f = p.function("f").unwrap();
        assert_eq!(f.body.stmts.len(), 4);
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse("fn f() {\n  int x = ;\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:"), "message should name line 2: {msg}");
    }

    #[test]
    fn rejects_unclosed_block() {
        assert!(parse("fn f() { int x = 1;").is_err());
    }

    #[test]
    fn rejects_top_level_garbage() {
        assert!(parse("return 1;").is_err());
    }

    #[test]
    fn parses_logical_not_and_negation() {
        let p = parse_ok("fn f(int x) -> int { return !(-x < 0) && !x; }");
        assert!(p.function("f").is_some());
    }

    #[test]
    fn assignment_target_must_be_lvalue() {
        assert!(parse("fn f(int x) { x + 1 = 2; }").is_err());
        assert!(parse("fn f() { f() = 2; }").is_err());
    }
}
