//! Fuzz-style robustness tests for the MiniC front end: no input may
//! panic the lexer or parser, and token display forms re-lex to
//! themselves.  Driven by the repository's seeded PRNG, so every case is
//! reproducible from the loop index.

use cbi_minic::lexer::lex;
use cbi_minic::parser::parse;
use cbi_minic::token::TokenKind;
use cbi_sampler::Pcg32;

/// Arbitrary strings never panic the lexer (they may, of course, be
/// rejected with an error).
#[test]
fn lexer_total_on_arbitrary_input() {
    let mut rng = Pcg32::new(0x1e5e);
    for _ in 0..512 {
        let len = rng.below(201) as usize;
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let s = String::from_utf8_lossy(&bytes);
        let _ = lex(&s);
    }
}

/// Arbitrary ASCII-ish soup never panics the parser either.
#[test]
fn parser_total_on_arbitrary_input() {
    let mut rng = Pcg32::new(0x9a45);
    for _ in 0..512 {
        let len = rng.below(301) as usize;
        let s: String = (0..len)
            .map(|_| match rng.below(20) {
                0 => '\n',
                1 => '\t',
                _ => (b' ' + rng.below(95) as u8) as char,
            })
            .collect();
        let _ = parse(&s);
    }
}

fn random_token(rng: &mut Pcg32) -> TokenKind {
    match rng.below(36) {
        0 => TokenKind::Int(rng.below(1_000_000) as i64),
        1 => {
            let len = 1 + rng.below(9) as usize;
            let mut s = String::new();
            s.push((b'a' + rng.below(26) as u8) as char);
            for _ in 1..len {
                s.push(match rng.below(3) {
                    0 => (b'0' + rng.below(10) as u8) as char,
                    1 => '_',
                    _ => (b'a' + rng.below(26) as u8) as char,
                });
            }
            // Avoid generating keywords as identifiers.
            match TokenKind::keyword(&s) {
                Some(k) => k,
                None => TokenKind::Ident(s),
            }
        }
        2 => TokenKind::KwInt,
        3 => TokenKind::KwPtr,
        4 => TokenKind::KwFn,
        5 => TokenKind::KwIf,
        6 => TokenKind::KwElse,
        7 => TokenKind::KwWhile,
        8 => TokenKind::KwReturn,
        9 => TokenKind::KwBreak,
        10 => TokenKind::KwContinue,
        11 => TokenKind::KwNull,
        12 => TokenKind::KwCheck,
        13 => TokenKind::LParen,
        14 => TokenKind::RParen,
        15 => TokenKind::LBrace,
        16 => TokenKind::RBrace,
        17 => TokenKind::LBracket,
        18 => TokenKind::RBracket,
        19 => TokenKind::Comma,
        20 => TokenKind::Semi,
        21 => TokenKind::Arrow,
        22 => TokenKind::Assign,
        23 => TokenKind::Plus,
        24 => TokenKind::Star,
        25 => TokenKind::Slash,
        26 => TokenKind::Percent,
        27 => TokenKind::EqEq,
        28 => TokenKind::NotEq,
        29 => TokenKind::Lt,
        30 => TokenKind::Le,
        31 => TokenKind::Gt,
        32 => TokenKind::Ge,
        33 => TokenKind::AndAnd,
        34 => TokenKind::OrOr,
        _ => TokenKind::Bang,
    }
}

/// Any sequence of valid tokens, printed with their display forms and
/// spaces between, lexes back to exactly the same kinds.
#[test]
fn token_display_round_trips() {
    let mut rng = Pcg32::new(0x70c3);
    for case in 0..512 {
        let n = rng.below(40) as usize;
        let kinds: Vec<TokenKind> = (0..n).map(|_| random_token(&mut rng)).collect();
        let text: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        let source = text.join(" ");
        let relexed = lex(&source).expect("valid tokens must lex");
        let got: Vec<TokenKind> = relexed
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| !matches!(k, TokenKind::Eof))
            .collect();
        assert_eq!(got, kinds, "case {case}: {source}");
    }
}

#[test]
fn pathological_nesting_is_rejected_not_crashed() {
    // Deep unclosed nesting: rejected by the depth guard, not a stack
    // overflow (this test originally caught exactly that bug).
    let mut src = String::from("fn f() { ");
    for _ in 0..5000 {
        src.push_str("if (1) { ");
    }
    let err = parse(&src).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");

    // Deeply nested parentheses: same guard.
    let expr = format!(
        "fn f() -> int {{ return {}1{}; }}",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    let err = parse(&expr).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");

    // Moderate nesting parses fine.
    let ok = format!(
        "fn f() -> int {{ return {}1{}; }}",
        "(".repeat(80),
        ")".repeat(80)
    );
    assert!(parse(&ok).is_ok());
}

#[test]
fn adjacent_operator_lexing_is_maximal_munch() {
    let toks = lex("<==>=!==-> - >").unwrap();
    let kinds: Vec<TokenKind> = toks.into_iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Le,
            TokenKind::Assign,
            TokenKind::Ge,
            TokenKind::NotEq,
            TokenKind::Assign,
            TokenKind::Arrow,
            TokenKind::Minus,
            TokenKind::Gt,
            TokenKind::Eof
        ]
    );
}

#[test]
fn bang_token_round_trips_alone() {
    let toks = lex("! x").unwrap();
    let kinds: Vec<TokenKind> = toks.into_iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Bang,
            TokenKind::Ident("x".into()),
            TokenKind::Eof
        ]
    );
}
