//! Fuzz-style robustness tests for the MiniC front end: no input may
//! panic the lexer or parser, and token display forms re-lex to
//! themselves.

use cbi_minic::lexer::lex;
use cbi_minic::parser::parse;
use cbi_minic::token::TokenKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the lexer (they may, of course, be
    /// rejected with an error).
    #[test]
    fn lexer_total_on_arbitrary_input(s in ".{0,200}") {
        let _ = lex(&s);
    }

    /// Arbitrary ASCII-ish soup never panics the parser either.
    #[test]
    fn parser_total_on_arbitrary_input(s in "[ -~\n\t]{0,300}") {
        let _ = parse(&s);
    }

    /// Any sequence of valid tokens, printed with their display forms and
    /// spaces between, lexes back to exactly the same kinds.
    #[test]
    fn token_display_round_trips(kinds in prop::collection::vec(arb_token(), 0..40)) {
        let text: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        let source = text.join(" ");
        let relexed = lex(&source).expect("valid tokens must lex");
        let got: Vec<TokenKind> = relexed
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| !matches!(k, TokenKind::Eof))
            .collect();
        prop_assert_eq!(got, kinds);
    }
}

fn arb_token() -> impl Strategy<Value = TokenKind> {
    prop_oneof![
        (0i64..1_000_000).prop_map(TokenKind::Int),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| {
            // Avoid generating keywords as identifiers.
            match TokenKind::keyword(&s) {
                Some(k) => k,
                None => TokenKind::Ident(s),
            }
        }),
        Just(TokenKind::KwInt),
        Just(TokenKind::KwPtr),
        Just(TokenKind::KwFn),
        Just(TokenKind::KwIf),
        Just(TokenKind::KwElse),
        Just(TokenKind::KwWhile),
        Just(TokenKind::KwReturn),
        Just(TokenKind::KwBreak),
        Just(TokenKind::KwContinue),
        Just(TokenKind::KwNull),
        Just(TokenKind::KwCheck),
        Just(TokenKind::LParen),
        Just(TokenKind::RParen),
        Just(TokenKind::LBrace),
        Just(TokenKind::RBrace),
        Just(TokenKind::LBracket),
        Just(TokenKind::RBracket),
        Just(TokenKind::Comma),
        Just(TokenKind::Semi),
        Just(TokenKind::Arrow),
        Just(TokenKind::Assign),
        Just(TokenKind::Plus),
        Just(TokenKind::Star),
        Just(TokenKind::Slash),
        Just(TokenKind::Percent),
        Just(TokenKind::EqEq),
        Just(TokenKind::NotEq),
        Just(TokenKind::Lt),
        Just(TokenKind::Le),
        Just(TokenKind::Gt),
        Just(TokenKind::Ge),
        Just(TokenKind::AndAnd),
        Just(TokenKind::OrOr),
        Just(TokenKind::Bang),
    ]
}

#[test]
fn pathological_nesting_is_rejected_not_crashed() {
    // Deep unclosed nesting: rejected by the depth guard, not a stack
    // overflow (this test originally caught exactly that bug).
    let mut src = String::from("fn f() { ");
    for _ in 0..5000 {
        src.push_str("if (1) { ");
    }
    let err = parse(&src).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");

    // Deeply nested parentheses: same guard.
    let expr = format!(
        "fn f() -> int {{ return {}1{}; }}",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    let err = parse(&expr).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");

    // Moderate nesting parses fine.
    let ok = format!(
        "fn f() -> int {{ return {}1{}; }}",
        "(".repeat(80),
        ")".repeat(80)
    );
    assert!(parse(&ok).is_ok());
}

#[test]
fn adjacent_operator_lexing_is_maximal_munch() {
    let toks = lex("<==>=!==-> - >").unwrap();
    let kinds: Vec<TokenKind> = toks.into_iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Le,
            TokenKind::Assign,
            TokenKind::Ge,
            TokenKind::NotEq,
            TokenKind::Assign,
            TokenKind::Arrow,
            TokenKind::Minus,
            TokenKind::Gt,
            TokenKind::Eof
        ]
    );
}
