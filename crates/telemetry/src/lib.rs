//! Zero-dependency telemetry for the bug-isolation pipeline.
//!
//! The paper's premise is that a deployed community emits cheap,
//! aggregatable telemetry (counter vectors, §2.5); this crate applies the
//! same discipline to the reproduction itself, so the campaign driver, the
//! VM, and the sampling runtime can be observed without perturbing them:
//!
//! * **Off by default, near-zero overhead.**  Every recording entry point
//!   begins with one relaxed atomic load; until [`enable`] is called, the
//!   whole crate is a no-op sink and hot loops pay a single predictable
//!   branch.
//! * **Per-thread buffers, deterministic merge.**  Each recording thread
//!   appends to a private buffer (no cross-thread contention on the record
//!   path).  [`collect`] drains every buffer and merges them
//!   deterministically: counters sum commutatively into name-sorted maps,
//!   per-worker attribution keys on the *logical* worker label set with
//!   [`set_worker`] (never the OS thread id), and spans sort on stable
//!   keys — the same discipline as the campaign driver's ordered report
//!   merge, so output never depends on scheduler interleaving.
//! * **Observation only.**  Nothing here feeds back into execution: no
//!   RNG draws, no branch decisions, no allocation visible to the program
//!   under test.  Enabling telemetry cannot change a campaign's reports —
//!   the `telemetry_determinism` suite holds the collector output
//!   byte-identical with telemetry on and off.
//!
//! # Vocabulary
//!
//! * a **counter** is a named monotonically increasing `u64`
//!   ([`count`]);
//! * a **histogram** records a distribution of `u64` values in log₂
//!   buckets with exact count/sum/min/max ([`record`]);
//! * a **span** is a named wall-clock interval ([`span`] returns an RAII
//!   guard; [`time`] wraps a closure).
//!
//! # Example
//!
//! ```
//! cbi_telemetry::enable();
//! {
//!     let _g = cbi_telemetry::span("phase.demo");
//!     cbi_telemetry::count("demo.widgets", 3);
//!     cbi_telemetry::record("demo.sizes", 17);
//! }
//! cbi_telemetry::disable();
//! let metrics = cbi_telemetry::collect();
//! assert_eq!(metrics.counter("demo.widgets"), 3);
//! assert_eq!(metrics.histogram("demo.sizes").unwrap().count, 1);
//! assert_eq!(metrics.spans.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod registry;

pub use metrics::{Histogram, Metrics, SpanRecord};
pub use registry::{Gauge, Registry, Series, SeriesId, SeriesKind, SeriesValue};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The logical label of threads that never call [`set_worker`]: the main
/// thread of the process, by convention.
pub const MAIN_WORKER: u32 = 0;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: Mutex<Vec<Arc<Mutex<LocalBuffer>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<LocalBuffer>>>> = const { RefCell::new(None) };
}

/// One thread's private telemetry buffer.  Records append here without
/// touching any shared state; [`collect`] merges all buffers later.
#[derive(Debug, Default)]
struct LocalBuffer {
    worker: u32,
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
    spans: Vec<SpanRecord>,
    next_seq: u64,
}

impl LocalBuffer {
    fn count(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    fn record(&mut self, name: &'static str, value: u64) {
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                self.histograms.push((name, h));
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` on the calling thread's buffer, registering it globally on
/// first use so [`collect`] can find it after the thread exits.
fn with_local(f: impl FnOnce(&mut LocalBuffer)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(LocalBuffer::default()));
            lock(&REGISTRY).push(Arc::clone(&arc));
            arc
        });
        f(&mut lock(arc));
    });
}

/// Turns recording on.  The first call anchors the clock epoch used by
/// span timestamps and the Chrome trace export.
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off.  Already-buffered data stays available to
/// [`collect`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether telemetry is currently recording.  One relaxed atomic load —
/// cheap enough for per-run (not per-instruction) checks on hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the telemetry epoch (anchored lazily).
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Tags the calling thread's buffer with a logical worker label.
///
/// Campaign workers call this with their deterministic shard index so
/// per-worker attribution survives any OS thread scheduling; untagged
/// threads report as [`MAIN_WORKER`].
pub fn set_worker(label: u32) {
    if !enabled() {
        return;
    }
    with_local(|b| b.worker = label);
}

/// Adds `delta` to the named counter.  No-op while disabled.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|b| b.count(name, delta));
}

/// Records one value into the named histogram.  No-op while disabled.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_local(|b| b.record(name, value));
}

/// An RAII span: records the wall-clock interval from construction to
/// drop under the creating thread's worker label.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_ns();
        let (name, start_ns) = (self.name, self.start_ns);
        with_local(|b| {
            let seq = b.next_seq;
            b.next_seq += 1;
            b.spans.push(SpanRecord {
                name: name.to_string(),
                worker: b.worker,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
                seq,
            });
        });
    }
}

/// Starts a span.  Returns an inert guard while disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let active = enabled();
    SpanGuard {
        name,
        start_ns: if active { now_ns() } else { 0 },
        active,
    }
}

/// Times a closure under a span and returns its result.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _g = span(name);
    f()
}

/// Drains every thread buffer into one deterministic [`Metrics`]
/// snapshot.
///
/// Buffers of threads that have exited are removed from the registry;
/// live threads keep recording into fresh buffers afterwards.  The merge
/// is order-independent: counters and histograms fold commutatively into
/// name-sorted maps, and spans sort on `(worker, start, seq, name)`.
pub fn collect() -> Metrics {
    let mut metrics = Metrics::default();
    let mut registry = lock(&REGISTRY);
    for buf in registry.iter() {
        let mut buf = lock(buf);
        let drained = std::mem::take(&mut *buf);
        buf.worker = drained.worker; // labels outlive a drain
        metrics.absorb(
            drained.worker,
            drained.counters,
            drained.histograms,
            drained.spans,
        );
    }
    // Threads that exited no longer hold their Arc; drop their slots.
    registry.retain(|buf| Arc::strong_count(buf) > 1);
    metrics.normalize();
    metrics
}

/// Discards all buffered telemetry without producing a snapshot.
pub fn reset() {
    let _ = collect();
}
