//! Merged telemetry snapshots.
//!
//! [`Metrics`] is what [`crate::collect`] returns: every thread buffer
//! folded into name-sorted maps plus a stably ordered span list.  The
//! merge is deterministic in the sense that matters for reproducibility:
//! the set of names, the counter totals, and the per-worker attribution
//! never depend on which OS thread ran which shard or on the order the
//! buffers drained — only wall-clock magnitudes vary run to run.

use std::collections::BTreeMap;

/// Number of log₂ histogram buckets: bucket `0` holds the value `0`,
/// bucket `i > 0` holds values `v` with `floor(log2 v) == i - 1`, and the
/// last bucket tops out at `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed distribution of `u64` values with exact count, sum,
/// min, and max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log₂ bucket occupancy; see [`BUCKETS`].
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Folds another histogram into this one (commutative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean of the recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or 0 when empty.  Log₂ resolution: an estimate,
    /// never an exact order statistic, except at the edges: `q <= 0.0`
    /// returns the exact minimum and `q >= 1.0` the exact maximum.  A
    /// NaN `q` is treated as 0.0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // NaN is treated the same as `q <= 0.0`, which `clamp` would
        // instead propagate.
        if q.is_nan() || q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(i).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Largest value that falls in bucket `i`; see [`BUCKETS`].
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One completed span: a named wall-clock interval attributed to a
/// logical worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"campaign.execute"`).
    pub name: String,
    /// Logical worker label of the recording thread.
    pub worker: u32,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Per-buffer monotonic sequence number (stable tiebreaker).
    pub seq: u64,
}

/// A merged, deterministic snapshot of all recorded telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Counter totals across all workers, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-worker counter totals: `worker label → name → value`.
    pub per_worker: BTreeMap<u32, BTreeMap<String, u64>>,
    /// Histograms merged across all workers, sorted by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// All spans, sorted by `(worker, start, seq, name)`.
    pub spans: Vec<SpanRecord>,
}

impl Metrics {
    /// A counter's total, or 0 if never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One worker's share of a counter, or 0.
    pub fn worker_counter(&self, worker: u32, name: &str) -> u64 {
        self.per_worker
            .get(&worker)
            .and_then(|m| m.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Total duration of all spans with the given name, in nanoseconds.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Span names aggregated to `(count, total ns)`, ordered by earliest
    /// start — the natural "phase table" ordering.
    pub fn span_summary(&self) -> Vec<(String, u64, u64)> {
        let mut order: Vec<&SpanRecord> = self.spans.iter().collect();
        order.sort_by_key(|s| (s.start_ns, s.worker, s.seq));
        let mut out: Vec<(String, u64, u64)> = Vec::new();
        for s in order {
            match out.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += s.dur_ns;
                }
                None => out.push((s.name.clone(), 1, s.dur_ns)),
            }
        }
        out
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Folds one drained thread buffer into the snapshot.
    pub(crate) fn absorb(
        &mut self,
        worker: u32,
        counters: Vec<(&'static str, u64)>,
        histograms: Vec<(&'static str, Histogram)>,
        spans: Vec<SpanRecord>,
    ) {
        for (name, v) in counters {
            *self.counters.entry(name.to_string()).or_default() += v;
            *self
                .per_worker
                .entry(worker)
                .or_default()
                .entry(name.to_string())
                .or_default() += v;
        }
        for (name, h) in histograms {
            self.histograms
                .entry(name.to_string())
                .or_default()
                .merge(&h);
        }
        self.spans.extend(spans);
    }

    /// Applies the deterministic final ordering after all buffers drained.
    pub(crate) fn normalize(&mut self) {
        self.spans.sort_by(|a, b| {
            (a.worker, a.start_ns, a.seq, &a.name).cmp(&(b.worker, b.start_ns, b.seq, &b.name))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1110);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..=3
        assert_eq!(h.buckets[3], 1); // 4..=7
        assert!(h.quantile(0.5) <= 7);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [5, 9] {
            a.observe(v);
        }
        for v in [1, 1 << 40] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 4);
        assert_eq!(ab.max, 1 << 40);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0.
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);

        let mut h = Histogram::default();
        for v in [3, 17, 900] {
            h.observe(v);
        }
        // q=0 is the exact min, q=1 the exact max; out-of-range clamps.
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(-0.5), 3);
        assert_eq!(h.quantile(1.0), 900);
        assert_eq!(h.quantile(2.0), 900);
        assert_eq!(h.quantile(f64::NAN), 3);
        // Interior quantiles never escape [min, max].
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let v = h.quantile(q);
            assert!((3..=900).contains(&v), "q={q} -> {v}");
        }

        // Single value: every quantile is that value.
        let mut one = Histogram::default();
        one.observe(42);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.quantile(q), 42);
        }
    }

    #[test]
    fn span_summary_orders_by_first_start() {
        let span = |name: &str, worker: u32, start_ns: u64, seq: u64| SpanRecord {
            name: name.to_string(),
            worker,
            start_ns,
            dur_ns: 10,
            seq,
        };
        let mut m = Metrics::default();
        // Worker 1's "late" phase starts first; worker 0 repeats "early".
        m.absorb(0, vec![], vec![], vec![span("early", 0, 50, 0)]);
        m.absorb(
            1,
            vec![],
            vec![],
            vec![span("late", 1, 5, 0), span("early", 1, 60, 1)],
        );
        m.normalize();
        let phases = m.span_summary();
        let names: Vec<&str> = phases.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["late", "early"]);
        assert_eq!(phases[1].1, 2, "repeat spans aggregate: {phases:?}");
        assert_eq!(phases[1].2, 20);
    }

    #[test]
    fn absorb_attributes_per_worker() {
        let mut m = Metrics::default();
        m.absorb(1, vec![("trials", 10)], vec![], vec![]);
        m.absorb(2, vec![("trials", 7)], vec![], vec![]);
        m.absorb(1, vec![("trials", 5)], vec![], vec![]);
        assert_eq!(m.counter("trials"), 22);
        assert_eq!(m.worker_counter(1, "trials"), 15);
        assert_eq!(m.worker_counter(2, "trials"), 7);
        assert_eq!(m.worker_counter(3, "trials"), 0);
    }
}
