//! Exporters for [`Metrics`] snapshots and [`Registry`] series.
//!
//! Five formats, all hand-rolled (no serialization dependency):
//!
//! * [`summary`] — an aligned, human-readable table for terminals;
//! * [`write_jsonl`] — one JSON object per line (`counter`, `histogram`,
//!   `span`), the machine-readable dump CI archives per PR;
//! * [`write_chrome_trace`] — a Chrome trace-event JSON array of complete
//!   (`"ph":"X"`) events, loadable in `chrome://tracing` or Perfetto,
//!   with one lane per logical worker;
//! * [`write_prometheus`] — Prometheus text exposition of a registry's
//!   latest points, integer-only so snapshots diff cleanly in CI;
//! * [`write_timeline`] — a JSONL epoch timeline of a registry, one
//!   object per epoch.

use crate::metrics::Metrics;
use crate::registry::{Registry, SeriesValue};
use std::io::{self, Write};

/// Renders an aligned human-readable summary of a snapshot.
pub fn summary(m: &Metrics) -> String {
    let mut out = String::new();
    if m.is_empty() {
        out.push_str("telemetry: no data recorded\n");
        return out;
    }

    let phases = m.span_summary();
    if !phases.is_empty() {
        out.push_str("spans (by first start):\n");
        let width = phases.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
        for (name, count, total_ns) in &phases {
            out.push_str(&format!(
                "  {name:<width$}  {:>10}  x{count}\n",
                fmt_ns(*total_ns),
            ));
        }
    }

    if !m.counters.is_empty() {
        out.push_str("counters:\n");
        let width = m.counters.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &m.counters {
            out.push_str(&format!("  {name:<width$}  {value:>12}\n"));
        }
    }

    if !m.histograms.is_empty() {
        out.push_str("histograms:\n");
        let width = m.histograms.keys().map(String::len).max().unwrap_or(0);
        for (name, h) in &m.histograms {
            out.push_str(&format!(
                "  {name:<width$}  n={} mean={:.1} min={} p50~{} p99~{} max={}\n",
                h.count,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.quantile(0.5),
                h.quantile(0.99),
                h.max,
            ));
        }
    }

    if m.per_worker.len() > 1 {
        out.push_str("per-worker counters:\n");
        for (worker, counters) in &m.per_worker {
            out.push_str(&format!("  {}:\n", worker_name(*worker)));
            let width = counters.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in counters {
                out.push_str(&format!("    {name:<width$}  {value:>12}\n"));
            }
        }
    }
    out
}

/// Writes the snapshot as JSON Lines: one `{"type": ...}` object per
/// counter (global and per-worker), histogram, and span.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_jsonl<W: Write>(m: &Metrics, mut w: W) -> io::Result<()> {
    for (name, value) in &m.counters {
        writeln!(
            w,
            "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}",
            json_str(name)
        )?;
    }
    for (worker, counters) in &m.per_worker {
        for (name, value) in counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":{},\"worker\":{worker},\"value\":{value}}}",
                json_str(name)
            )?;
        }
    }
    for (name, h) in &m.histograms {
        writeln!(
            w,
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_str(name),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
        )?;
    }
    for s in &m.spans {
        writeln!(
            w,
            "{{\"type\":\"span\",\"name\":{},\"worker\":{},\"start_us\":{:.3},\"dur_us\":{:.3}}}",
            json_str(&s.name),
            s.worker,
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
        )?;
    }
    Ok(())
}

/// Writes the snapshot's spans as a Chrome trace-event file (the JSON
/// object form with a `traceEvents` array), loadable in
/// `chrome://tracing`.  Each logical worker becomes one named thread
/// lane; counters ride along as a final instant event's arguments.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_chrome_trace<W: Write>(m: &Metrics, mut w: W) -> io::Result<()> {
    write!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let mut workers: Vec<u32> = m.spans.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for worker in &workers {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{worker},\"args\":{{\"name\":{}}}}}",
            json_str(&worker_name(*worker))
        )?;
    }
    for s in &m.spans {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":{},\"cat\":\"cbi\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            json_str(&s.name),
            s.worker,
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
        )?;
    }
    if !m.counters.is_empty() {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"counters\",\"cat\":\"cbi\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":0,\"s\":\"g\",\"args\":{{"
        )?;
        let mut first_arg = true;
        for (name, value) in &m.counters {
            if !first_arg {
                write!(w, ",")?;
            }
            first_arg = false;
            write!(w, "{}:{value}", json_str(name))?;
        }
        write!(w, "}}}}")?;
    }
    writeln!(w, "]}}")?;
    Ok(())
}

/// Writes a registry's **latest** point per series in the Prometheus
/// text exposition format.
///
/// One `# TYPE` comment per metric name (first-encounter order over the
/// id-sorted registry), then one sample line per series.  Histograms
/// expand to cumulative `_bucket{le=...}` samples over the non-empty
/// log₂ buckets plus `le="+Inf"`, and `_sum` / `_count` samples.  Every
/// emitted value is an integer, so the output is a stable golden
/// surface: byte-identical across `--jobs` whenever the underlying
/// epoch snapshots are.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_prometheus<W: Write>(r: &Registry, mut w: W) -> io::Result<()> {
    let mut last_name: Option<&str> = None;
    for (id, series) in r.iter() {
        let Some((_, value)) = series.latest() else {
            continue;
        };
        if last_name != Some(id.name.as_str()) {
            writeln!(w, "# TYPE {} {}", id.name, series.kind.prometheus_type())?;
            last_name = Some(id.name.as_str());
        }
        match value {
            SeriesValue::Counter(v) => writeln!(w, "{} {v}", id.render())?,
            SeriesValue::Gauge(v) => writeln!(w, "{} {v}", id.render())?,
            SeriesValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let le = crate::metrics::bucket_upper_edge(i).to_string();
                    writeln!(
                        w,
                        "{} {cumulative}",
                        with_label(&id.name, "_bucket", &id.labels, Some(("le", &le)))
                    )?;
                }
                writeln!(
                    w,
                    "{} {}",
                    with_label(&id.name, "_bucket", &id.labels, Some(("le", "+Inf"))),
                    h.count
                )?;
                writeln!(
                    w,
                    "{} {}",
                    with_label(&id.name, "_sum", &id.labels, None),
                    h.sum
                )?;
                writeln!(
                    w,
                    "{} {}",
                    with_label(&id.name, "_count", &id.labels, None),
                    h.count
                )?;
            }
        }
    }
    Ok(())
}

/// Writes a registry as a JSONL epoch timeline: one JSON object per
/// epoch, with every series that has a point at that epoch keyed by its
/// rendered id (`name{k="v"}`).  Histogram points become nested
/// `{"count","sum","min","max"}` objects.  Integer-only, id-sorted, and
/// deterministic for deterministic inputs.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_timeline<W: Write>(r: &Registry, mut w: W) -> io::Result<()> {
    for epoch in r.epochs() {
        write!(w, "{{\"epoch\":{epoch}")?;
        for (id, series) in r.iter() {
            let Some(value) = series.at_epoch(epoch) else {
                continue;
            };
            write!(w, ",{}:", json_str(&id.render()))?;
            match value {
                SeriesValue::Counter(v) => write!(w, "{v}")?,
                SeriesValue::Gauge(v) => write!(w, "{v}")?,
                SeriesValue::Histogram(h) => write!(
                    w,
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                )?,
            }
        }
        writeln!(w, "}}")?;
    }
    Ok(())
}

/// `name` + `suffix` with the series labels, plus an optional extra
/// label appended last (Prometheus `le` convention).
fn with_label(
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut out = String::new();
    out.push_str(name);
    out.push_str(suffix);
    if labels.is_empty() && extra.is_none() {
        return out;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Human-facing name of a logical worker lane.
pub fn worker_name(worker: u32) -> String {
    if worker == crate::MAIN_WORKER {
        "main".to_string()
    } else {
        format!("worker-{worker}")
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn sep<W: Write>(w: &mut W, first: &mut bool) -> io::Result<()> {
    if !*first {
        write!(w, ",")?;
    }
    *first = false;
    Ok(())
}

/// Minimal JSON string encoding; metric names are plain identifiers but
/// escaping keeps the output well-formed for any input.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, SpanRecord};

    fn sample() -> Metrics {
        let mut m = Metrics::default();
        let mut h = Histogram::default();
        h.observe(10);
        h.observe(1000);
        m.absorb(
            0,
            vec![("vm.runs", 2)],
            vec![("vm.ops_per_run", h)],
            vec![SpanRecord {
                name: "phase.parse".to_string(),
                worker: 0,
                start_ns: 1_000,
                dur_ns: 2_500_000,
                seq: 0,
            }],
        );
        m.absorb(1, vec![("campaign.trials", 40)], vec![], vec![]);
        m.normalize();
        m
    }

    #[test]
    fn summary_mentions_everything() {
        let s = summary(&sample());
        assert!(s.contains("phase.parse"), "{s}");
        assert!(s.contains("vm.runs"), "{s}");
        assert!(s.contains("vm.ops_per_run"), "{s}");
        assert!(s.contains("worker-1"), "{s}");
        assert!(s.contains("2.500 ms"), "{s}");
    }

    #[test]
    fn jsonl_lines_are_json_objects() {
        let mut buf = Vec::new();
        write_jsonl(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().count() >= 4, "{text}");
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":"), "{line}");
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let mut buf = Vec::new();
        write_chrome_trace(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        assert!(text.trim_end().ends_with("]}"), "{text}");
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        assert!(text.contains("\"thread_name\""), "{text}");
        assert!(text.contains("\"vm.runs\":2"), "{text}");
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.record_counter("cbi_runs_total", &[], 1, 100);
        r.record_counter("cbi_runs_total", &[], 2, 200);
        r.record_counter("cbi_batches_total", &[("outcome", "accepted")], 2, 9);
        r.record_counter("cbi_batches_total", &[("outcome", "rejected")], 2, 1);
        r.record_gauge("cbi_survivors", &[], 2, 4);
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(700);
        r.record_histogram("cbi_batch_bytes", &[], 2, h);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut buf = Vec::new();
        write_prometheus(&sample_registry(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE cbi_runs_total counter"), "{text}");
        // Latest point only: epoch 2's value, not epoch 1's.
        assert!(text.contains("cbi_runs_total 200"), "{text}");
        assert!(!text.contains("cbi_runs_total 100"), "{text}");
        assert!(
            text.contains("cbi_batches_total{outcome=\"accepted\"} 9"),
            "{text}"
        );
        assert!(text.contains("# TYPE cbi_survivors gauge"), "{text}");
        assert!(
            text.contains("cbi_batch_bytes_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("cbi_batch_bytes_sum 703"), "{text}");
        assert!(text.contains("cbi_batch_bytes_count 2"), "{text}");
        // One TYPE line per metric name, not per series.
        assert_eq!(
            text.matches("# TYPE cbi_batches_total").count(),
            1,
            "{text}"
        );
        // Integer-only golden surface: no decimal points anywhere.
        assert!(!text.contains('.'), "{text}");
    }

    #[test]
    fn timeline_one_object_per_epoch() {
        let mut buf = Vec::new();
        write_timeline(&sample_registry(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("{\"epoch\":1"), "{text}");
        assert!(lines[1].starts_with("{\"epoch\":2"), "{text}");
        // Epoch 1 has only the one series recorded there.
        assert!(!lines[0].contains("cbi_survivors"), "{text}");
        assert!(lines[1].contains("\"cbi_survivors\":4"), "{text}");
        assert!(
            lines[1]
                .contains("\"cbi_batch_bytes\":{\"count\":2,\"sum\":703,\"min\":3,\"max\":700}"),
            "{text}"
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
