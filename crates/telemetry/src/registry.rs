//! A named registry of typed metric series keyed by epoch.
//!
//! The thread-local buffers in the crate root capture *process*
//! telemetry (wall-clock spans, per-worker counters); this module is the
//! complementary *deployment* surface: a [`Registry`] holds named series
//! of [`Counter`](SeriesValue::Counter) / [`Gauge`](SeriesValue::Gauge) /
//! [`Histogram`](SeriesValue::Histogram) snapshots keyed by **epoch
//! number**, never wall clocks, so two runs that close the same epochs
//! export byte-identical series regardless of `--jobs` or scheduler
//! interleaving.
//!
//! Gauges live here — and only here — on purpose: a last-write-wins
//! gauge merged across racing thread buffers would be nondeterministic,
//! while a gauge sampled once per closed epoch is a pure function of the
//! epoch snapshot.
//!
//! Series are identified by `(name, labels)` like Prometheus time
//! series; labels are sorted key/value pairs so identity is canonical.
//! Exporters live in [`crate::export`]: Prometheus text exposition
//! ([`crate::export::write_prometheus`]) and a JSONL epoch timeline
//! ([`crate::export::write_timeline`]).

use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt;

/// An instantaneous signed level, as opposed to a monotonic counter.
///
/// Deterministic by construction: a `Gauge` is set from epoch-snapshot
/// state, not sampled from racing threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// A gauge holding `value`.
    pub fn new(value: i64) -> Gauge {
        Gauge { value }
    }

    /// Sets the level.
    pub fn set(&mut self, value: i64) {
        self.value = value;
    }

    /// Adds `delta` (may be negative), saturating at the `i64` range.
    pub fn add(&mut self, delta: i64) {
        self.value = self.value.saturating_add(delta);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// The type of a series; fixed at first record, mismatches panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Monotonically non-decreasing `u64` totals.
    Counter,
    /// Instantaneous signed levels.
    Gauge,
    /// Full [`Histogram`] snapshots.
    Histogram,
}

impl SeriesKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// Canonical series identity: a metric name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Metric name, e.g. `cbi_batches_total`.
    pub name: String,
    /// Label pairs, sorted by key (then value) at construction.
    pub labels: Vec<(String, String)>,
}

impl SeriesId {
    /// Builds an id, sorting labels into canonical order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> SeriesId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",...}`, or just `name` without labels.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::new();
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// One recorded point of a series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesValue {
    /// A counter total as of the epoch.
    Counter(u64),
    /// A gauge level as of the epoch.
    Gauge(i64),
    /// A histogram snapshot as of the epoch (boxed: a histogram is two
    /// orders of magnitude larger than the scalar variants).
    Histogram(Box<Histogram>),
}

impl SeriesValue {
    /// The kind this value belongs to.
    pub fn kind(&self) -> SeriesKind {
        match self {
            SeriesValue::Counter(_) => SeriesKind::Counter,
            SeriesValue::Gauge(_) => SeriesKind::Gauge,
            SeriesValue::Histogram(_) => SeriesKind::Histogram,
        }
    }
}

/// A typed series: epoch-ordered points of one kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// The kind every point of this series carries.
    pub kind: SeriesKind,
    /// `(epoch, value)` points in strictly ascending epoch order.
    pub points: Vec<(u64, SeriesValue)>,
}

impl Series {
    /// The most recent point, if any.
    pub fn latest(&self) -> Option<&(u64, SeriesValue)> {
        self.points.last()
    }

    /// The point recorded at `epoch`, if any.
    pub fn at_epoch(&self, epoch: u64) -> Option<&SeriesValue> {
        self.points
            .binary_search_by_key(&epoch, |(e, _)| *e)
            .ok()
            .map(|i| &self.points[i].1)
    }

    fn record(&mut self, epoch: u64, value: SeriesValue) {
        debug_assert_eq!(self.kind, value.kind());
        match self.points.binary_search_by_key(&epoch, |(e, _)| *e) {
            Ok(i) => self.points[i].1 = value, // re-record replaces
            Err(i) => self.points.insert(i, (epoch, value)),
        }
    }
}

/// A deterministic registry of named, epoch-keyed typed series.
///
/// Identity-ordered (`BTreeMap` over [`SeriesId`]) so iteration — and
/// therefore every exporter — is stable.  Recording the same
/// `(series, epoch)` twice replaces the point, which makes rebuilding a
/// registry from cumulative epoch snapshots idempotent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    series: BTreeMap<SeriesId, Series>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Records a counter total for `(name, labels)` at `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different kind.
    pub fn record_counter(&mut self, name: &str, labels: &[(&str, &str)], epoch: u64, value: u64) {
        self.record(
            SeriesId::new(name, labels),
            epoch,
            SeriesValue::Counter(value),
        );
    }

    /// Records a gauge level for `(name, labels)` at `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different kind.
    pub fn record_gauge(&mut self, name: &str, labels: &[(&str, &str)], epoch: u64, value: i64) {
        self.record(
            SeriesId::new(name, labels),
            epoch,
            SeriesValue::Gauge(value),
        );
    }

    /// Records a histogram snapshot for `(name, labels)` at `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different kind.
    pub fn record_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        epoch: u64,
        value: Histogram,
    ) {
        self.record(
            SeriesId::new(name, labels),
            epoch,
            SeriesValue::Histogram(Box::new(value)),
        );
    }

    fn record(&mut self, id: SeriesId, epoch: u64, value: SeriesValue) {
        let kind = value.kind();
        let series = self.series.entry(id).or_insert_with(|| Series {
            kind,
            points: Vec::new(),
        });
        assert_eq!(
            series.kind, kind,
            "series recorded with conflicting kinds ({:?} vs {:?})",
            series.kind, kind
        );
        series.record(epoch, value);
    }

    /// Looks up one series.
    pub fn series(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        self.series.get(&SeriesId::new(name, labels))
    }

    /// Iterates all series in canonical (id-sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesId, &Series)> {
        self.series.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// All epochs that appear in any series, ascending and deduplicated.
    pub fn epochs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .series
            .values()
            .flat_map(|s| s.points.iter().map(|(e, _)| *e))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_set_add_get() {
        let mut g = Gauge::new(5);
        g.add(-7);
        assert_eq!(g.get(), -2);
        g.set(10);
        assert_eq!(g.get(), 10);
        g.add(i64::MAX);
        assert_eq!(g.get(), i64::MAX); // saturates
        assert_eq!(Gauge::new(-3).to_string(), "-3");
    }

    #[test]
    fn series_id_canonicalizes_labels() {
        let a = SeriesId::new("m", &[("b", "2"), ("a", "1")]);
        let b = SeriesId::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(SeriesId::new("m", &[]).render(), "m");
    }

    #[test]
    fn registry_records_and_replaces() {
        let mut r = Registry::new();
        r.record_counter("runs", &[], 1, 10);
        r.record_counter("runs", &[], 2, 20);
        r.record_counter("runs", &[], 1, 11); // replace
        let s = r.series("runs", &[]).unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.at_epoch(1), Some(&SeriesValue::Counter(11)));
        assert_eq!(s.latest(), Some(&(2, SeriesValue::Counter(20))));
        assert_eq!(r.epochs(), vec![1, 2]);
    }

    #[test]
    fn registry_orders_out_of_order_epochs() {
        let mut r = Registry::new();
        r.record_gauge("level", &[], 5, 50);
        r.record_gauge("level", &[], 2, 20);
        let s = r.series("level", &[]).unwrap();
        let epochs: Vec<u64> = s.points.iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.record_counter("m", &[], 1, 1);
        r.record_gauge("m", &[], 2, 1);
    }
}
