//! Integration tests for the global telemetry runtime.
//!
//! Telemetry state is process-global, so every test that enables it
//! serializes on one mutex and drains buffers before releasing it.

use cbi_telemetry as tm;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

fn guarded<T>(f: impl FnOnce() -> T) -> T {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    tm::reset();
    tm::enable();
    let out = f();
    tm::disable();
    tm::reset();
    out
}

#[test]
fn disabled_is_a_no_op_sink() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    tm::disable();
    tm::reset();
    tm::count("noop.counter", 5);
    tm::record("noop.hist", 9);
    drop(tm::span("noop.span"));
    let m = tm::collect();
    assert!(m.is_empty(), "{m:?}");
}

#[test]
fn counters_merge_across_threads_deterministically() {
    let (total, w1, w2) = guarded(|| {
        std::thread::scope(|s| {
            for w in 1..=2u32 {
                s.spawn(move || {
                    tm::set_worker(w);
                    for _ in 0..w * 10 {
                        tm::count("t.trials", 1);
                    }
                });
            }
        });
        let m = tm::collect();
        (
            m.counter("t.trials"),
            m.worker_counter(1, "t.trials"),
            m.worker_counter(2, "t.trials"),
        )
    });
    assert_eq!(total, 30);
    assert_eq!(w1, 10);
    assert_eq!(w2, 20);
}

#[test]
fn spans_capture_duration_and_nest() {
    let m = guarded(|| {
        {
            let _outer = tm::span("t.outer");
            tm::time("t.inner", || {
                std::thread::sleep(std::time::Duration::from_millis(2))
            });
        }
        tm::collect()
    });
    assert_eq!(m.spans.len(), 2);
    let outer = m.span_total_ns("t.outer");
    let inner = m.span_total_ns("t.inner");
    assert!(inner >= 2_000_000, "inner {inner}ns");
    assert!(outer >= inner, "outer {outer} < inner {inner}");
    let phases = m.span_summary();
    assert_eq!(phases[0].0, "t.outer", "outer starts first: {phases:?}");
}

#[test]
fn collect_drains_and_preserves_worker_label() {
    let (first, second) = guarded(|| {
        tm::count("t.drain", 1);
        let first = tm::collect();
        tm::count("t.drain", 2);
        let second = tm::collect();
        (first, second)
    });
    assert_eq!(first.counter("t.drain"), 1);
    assert_eq!(second.counter("t.drain"), 2, "drained, not cumulative");
}

#[test]
fn exporters_round_the_same_snapshot() {
    let m = guarded(|| {
        tm::count("t.widgets", 3);
        tm::record("t.sizes", 128);
        tm::time("t.phase", || ());
        tm::collect()
    });
    let text = tm::export::summary(&m);
    assert!(text.contains("t.widgets"), "{text}");
    let mut jsonl = Vec::new();
    tm::export::write_jsonl(&m, &mut jsonl).unwrap();
    assert!(String::from_utf8(jsonl).unwrap().contains("\"t.sizes\""));
    let mut trace = Vec::new();
    tm::export::write_chrome_trace(&m, &mut trace).unwrap();
    let trace = String::from_utf8(trace).unwrap();
    assert!(trace.contains("\"t.phase\""), "{trace}");
}
