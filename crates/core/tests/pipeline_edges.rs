//! Edge cases of the analysis pipelines: degenerate campaigns, all-success
//! and all-failure report sets.

use cbi::prelude::*;
use cbi::RegressionConfig;

const HEALTHY: &str = "fn g() -> int { return 1; }\n\
     fn main() -> int { int x = g(); print(x); return 0; }";

const DOOMED: &str = "fn g() -> int { return 0; }\n\
     fn main() -> int { int x = g(); ptr p; return p[0]; }";

fn campaign(src: &str, runs: usize) -> CampaignResult {
    let program = parse(src).unwrap();
    let trials: Vec<Vec<i64>> = (0..runs).map(|_| vec![]).collect();
    run_campaign(
        &program,
        &trials,
        &CampaignConfig::sampled(Scheme::Returns, SamplingDensity::always()),
    )
    .unwrap()
}

#[test]
fn all_success_campaign_eliminates_everything() {
    let result = campaign(HEALTHY, 50);
    assert_eq!(result.collector.failure_count(), 0);
    let report = cbi::eliminate(&result);
    // With zero failures, nothing is "sometimes true in failures":
    // lack-of-failing-example leaves nothing and the combination is empty.
    assert_eq!(report.independent_survivors[2], 0);
    assert!(report.combined.is_empty(), "{:?}", report.combined_names);
}

#[test]
fn all_failure_campaign_blames_everything_observed() {
    let result = campaign(DOOMED, 50);
    assert_eq!(result.collector.success_count(), 0);
    let report = cbi::eliminate(&result);
    // With zero successes, successful counterexample cannot eliminate
    // anything: the combination equals the universal-falsehood survivors.
    assert_eq!(report.combined.len(), report.independent_survivors[0]);
    assert!(!report.combined.is_empty());
}

#[test]
fn regress_handles_single_class_gracefully() {
    // Degenerate training data (all success) still trains a model; it
    // should predict "no crash" everywhere and report that accuracy.
    let result = campaign(HEALTHY, 60);
    let study = cbi::regress(
        &result,
        &RegressionConfig {
            train: 40,
            cv: 10,
            ..RegressionConfig::default()
        },
    )
    .unwrap();
    assert_eq!(study.failure_rate, 0.0);
    assert!(study.test_accuracy > 0.99);
}

#[test]
fn regress_reports_empty_campaign_as_typed_error() {
    let result = campaign(HEALTHY, 0);
    let err = cbi::regress(&result, &RegressionConfig::default()).unwrap_err();
    assert_eq!(err, PipelineError::NoReports);
    assert!(err.to_string().contains("no reports"));
}

#[test]
fn regress_reports_oversized_split_as_typed_error() {
    let result = campaign(HEALTHY, 10);
    let err = cbi::regress(
        &result,
        &RegressionConfig {
            train: 9,
            cv: 5,
            ..RegressionConfig::default()
        },
    )
    .unwrap_err();
    assert_eq!(
        err,
        PipelineError::SplitExceedsReports {
            train: 9,
            cv: 5,
            total: 10
        }
    );
    assert!(err.to_string().contains("exceed"));
}

#[test]
fn regression_study_rank_lookup_misses_cleanly() {
    let result = campaign(DOOMED, 40);
    let study = cbi::regress(
        &result,
        &RegressionConfig {
            train: 25,
            cv: 8,
            ..RegressionConfig::default()
        },
    )
    .unwrap();
    assert!(study.rank_of("not a predicate").is_none());
    assert!(study.top(1000).len() <= study.ranked.len());
}

#[test]
fn eliminate_names_match_site_table() {
    let result = campaign(DOOMED, 30);
    let report = cbi::eliminate(&result);
    for (idx, name) in report.combined.iter().zip(&report.combined_names) {
        assert_eq!(
            *name,
            result.instrumented.sites.predicate_name(*idx),
            "name/index mismatch"
        );
    }
}
