//! Deployment coverage analysis.
//!
//! One of the paper's motivating uses beyond bug isolation (§1): "we may
//! be interested in discovering whether code not covered by in-house
//! testing is ever executed in practice."  Given a campaign's reports,
//! this module answers which instrumentation sites were ever reached by
//! the user community, and which predicates were never once observed
//! true — dead configuration space or genuinely unreachable behaviour.

use cbi_instrument::{Site, SiteId};
use cbi_reports::SufficientStats;
use cbi_workloads::CampaignResult;

/// Coverage summary over a campaign.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Total sites in the instrumented program.
    pub total_sites: usize,
    /// Sites where at least one counter fired in some run.
    pub covered_sites: usize,
    /// Ids of sites never reached by any run in the community.
    pub unreached_sites: Vec<SiteId>,
    /// Names of individual predicates never observed true, at sites that
    /// *were* reached (behaviour the deployment never exhibited).
    pub never_true_predicates: Vec<String>,
}

impl CoverageReport {
    /// Fraction of sites reached, in `[0, 1]`.
    pub fn site_coverage(&self) -> f64 {
        if self.total_sites == 0 {
            0.0
        } else {
            self.covered_sites as f64 / self.total_sites as f64
        }
    }
}

/// Computes deployment coverage from a campaign's reports.
pub fn coverage(result: &CampaignResult) -> CoverageReport {
    let stats = if result.collector.is_empty() {
        // No reports: an all-zero accumulator sized to the site table.
        SufficientStats::new(result.instrumented.sites.total_counters())
    } else {
        result.collector.reports().iter().cloned().collect()
    };
    let sites: Vec<&Site> = result.instrumented.sites.iter().collect();

    let mut covered = 0;
    let mut unreached = Vec::new();
    let mut never_true = Vec::new();
    for site in sites {
        let arity = site.kind.arity();
        let reached = (0..arity).any(|w| stats.ever_observed(site.counter_base + w));
        if reached {
            covered += 1;
            for w in 0..arity {
                if !stats.ever_observed(site.counter_base + w) {
                    never_true.push(site.predicate_name(w));
                }
            }
        } else {
            unreached.push(site.id);
        }
    }

    CoverageReport {
        total_sites: result.instrumented.sites.len(),
        covered_sites: covered,
        unreached_sites: unreached,
        never_true_predicates: never_true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_instrument::Scheme;
    use cbi_sampler::SamplingDensity;
    use cbi_workloads::{run_campaign, CampaignConfig};

    #[test]
    fn coverage_distinguishes_reached_and_dead_code() {
        // `never()` is dead code; its return site can never be covered.
        let program = cbi_minic::parse(
            "fn used() -> int { return 1; }\n\
             fn never() -> int { return 2; }\n\
             fn main() -> int {\n\
                 int x = used();\n\
                 if (x > 100) { int y = never(); print(y); }\n\
                 return 0;\n\
             }",
        )
        .unwrap();
        let trials: Vec<Vec<i64>> = (0..50).map(|_| vec![]).collect();
        let result = run_campaign(
            &program,
            &trials,
            &CampaignConfig::sampled(Scheme::Returns, SamplingDensity::always()),
        )
        .unwrap();
        let report = coverage(&result);
        assert_eq!(report.total_sites, 2);
        assert_eq!(report.covered_sites, 1);
        assert_eq!(report.unreached_sites.len(), 1);
        assert!((report.site_coverage() - 0.5).abs() < 1e-9);
        // used() always returns 1 (positive): the negative and zero
        // predicates are never observed true.
        assert!(report
            .never_true_predicates
            .iter()
            .any(|p| p.contains("used() < 0")));
        assert!(report
            .never_true_predicates
            .iter()
            .any(|p| p.contains("used() == 0")));
    }

    #[test]
    fn empty_campaign_reports_zero_coverage() {
        let program = cbi_minic::parse(
            "fn f() -> int { return 1; } fn main() -> int { int x = f(); return x; }",
        )
        .unwrap();
        let result = run_campaign(
            &program,
            &[],
            &CampaignConfig::sampled(Scheme::Returns, SamplingDensity::always()),
        )
        .unwrap();
        let report = coverage(&result);
        assert_eq!(report.covered_sites, 0);
        assert_eq!(report.site_coverage(), 0.0);
    }
}
