//! Cooperative bug isolation via remote program sampling.
//!
//! A from-scratch reproduction of *Bug Isolation via Remote Program
//! Sampling* (Liblit, Aiken, Zheng, Jordan; PLDI 2003): statistically fair
//! sampling of program instrumentation, compact counter-vector feedback
//! reports, and statistical analyses that isolate bugs from the reports.
//!
//! # Architecture
//!
//! ```text
//!   cbi-minic       MiniC language front end (the C substrate)
//!      │
//!   cbi-instrument  observation schemes + fair-sampling transformation
//!      │
//!   cbi-vm          deterministic interpreter, corruptible heap, op costs
//!      │
//!   cbi-reports     counter-vector reports, central collector
//!      │
//!   cbi-stats       elimination strategies, ℓ₁ logistic regression
//!      │
//!   cbi-workloads   benchmark analogues, ccrypt/bc case studies
//!      │
//!   cbi (this)      end-to-end pipelines: eliminate() and regress()
//! ```
//!
//! # Quickstart
//!
//! ```
//! use cbi::prelude::*;
//!
//! // A buggy program: crashes whenever g() returns zero.
//! let program = cbi::minic::parse(
//!     "fn g() -> int { if (has_input() == 0) { return 0; } return read(); }
//!      fn main() -> int {
//!          ptr buf = alloc(4);
//!          int v = g();
//!          buf[0] = 100 / v;     // divide by zero when g() == 0
//!          print(buf[0]);
//!          free(buf);
//!          return 0;
//!      }",
//! )?;
//!
//! // Fuzz it: some runs have input, some do not.
//! let trials: Vec<Vec<i64>> = (0..400)
//!     .map(|i| if i % 11 == 0 { vec![] } else { vec![(i % 9) + 1] })
//!     .collect();
//!
//! let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(2));
//! let result = run_campaign(&program, &trials, &config)?;
//! let report = cbi::eliminate(&result);
//! assert!(report.failures > 0);
//! // The surviving predicate names the culprit: g() == 0.
//! assert!(report.combined_names.iter().any(|p| p.contains("g() == 0")));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod deployment;
pub mod detection;
pub mod epoch;
pub mod health;
pub mod pipeline;
pub mod remote;
pub mod streaming;
pub mod traces;

pub use coverage::{coverage, CoverageReport};
pub use deployment::{
    simulate_deployment, simulate_variant_fleet, Deployment, FleetConfig, FleetOutcome,
};
pub use detection::FirstObservation;
pub use epoch::{CohortStats, EpochAggregator, EpochSnapshot, FlightRecorder, IngestEvent};
pub use health::{
    health_registry, render_health, EpochIndicators, HealthConfig, HealthEvent, HealthMonitor,
};
pub use pipeline::{
    eliminate, eliminate_stats, regress, EliminationReport, PipelineError, RegressionConfig,
    RegressionStudy,
};
pub use remote::{IngestServer, IngestSummary, ServeError};
pub use streaming::{StreamingAnalyzer, StreamingConfig};
pub use traces::{crash_proximity, ProximityConfig, ProximityEntry, ProximityReport};

pub use cbi_instrument as instrument;
pub use cbi_minic as minic;
pub use cbi_reports as reports;
pub use cbi_sampler as sampler;
pub use cbi_stats as stats;
pub use cbi_telemetry as telemetry;
pub use cbi_vm as vm;
pub use cbi_workloads as workloads;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::pipeline::{
        eliminate, regress, EliminationReport, PipelineError, RegressionConfig, RegressionStudy,
    };
    pub use crate::remote::{IngestServer, IngestSummary};
    pub use crate::streaming::{StreamingAnalyzer, StreamingConfig};
    pub use cbi_instrument::{
        apply_sampling, instrument, strip_sites, Scheme, SiteTable, TransformOptions,
    };
    pub use cbi_minic::{parse, pretty, resolve, Program};
    pub use cbi_reports::{
        Collector, Label, Report, ReportLayout, ReportSink, SpoolSink, SufficientStats,
        TransmitSink,
    };
    pub use cbi_sampler::{CountdownBank, CountdownSource, Geometric, SamplingDensity};
    pub use cbi_stats::{Dataset, LogisticModel, Strategy, TrainConfig};
    pub use cbi_vm::{Engine, RunOutcome, Vm};
    pub use cbi_workloads::{
        run_campaign, run_campaign_into, CampaignConfig, CampaignResult, CampaignRun,
    };
}
