//! Per-epoch aggregation over a community report stream.
//!
//! §3.1.3 frames detection as a function of *community runs*: "sixty
//! million Office XP licenses … produce 230,258 runs every nineteen
//! minutes".  An [`EpochAggregator`] extends the streaming server side
//! with exactly that view: it folds every accepted report into the
//! O(counters) [`StreamingAnalyzer`] state plus a shared
//! [`FirstObservation`] record, and every `epoch_len` runs it closes an
//! epoch and snapshots the questions a deployment operator asks —
//! detection latency of a target predicate, elimination-survivor count,
//! regression rank against ground truth, failure counts, and bytes on
//! the wire.
//!
//! The aggregator is itself a [`ReportSink`], so it can sit behind the
//! transactional batch ingest exactly where a plain analyzer would.

use crate::detection::FirstObservation;
use crate::streaming::{StreamingAnalyzer, StreamingConfig};
use cbi_instrument::SiteTable;
use cbi_reports::{
    DecodeOutcome, Label, Provenance, Report, ReportLayout, ReportSink, SinkError, WireErrorKind,
};
use std::collections::{BTreeMap, VecDeque};

/// Per-cohort ingest accounting: batches, bytes, corruption, rejection,
/// and retry totals attributable to one client cohort (e.g.
/// `"1/100+stale"`).  All fields are cumulative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CohortStats {
    /// Batches committed from this cohort.
    pub batches: u64,
    /// Wire bytes committed from this cohort.
    pub bytes: u64,
    /// Committed batches whose delivered bytes were altered in flight.
    pub corrupt: u64,
    /// Batches rejected (all kinds).
    pub rejected: u64,
    /// Rejections specifically from stale-version layout mismatches.
    pub stale: u64,
    /// Delivery retries attributed by the transport.
    pub retries: u64,
}

/// One ingest event as seen by the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestEvent {
    /// Monotonic sequence number across the whole stream (0-based).
    pub seq: u64,
    /// Transmitting client id.
    pub client: u64,
    /// Zero-based delivery attempt index.
    pub attempt: u32,
    /// Cohort label.
    pub cohort: String,
    /// How decoding went.
    pub outcome: DecodeOutcome,
    /// Delivered payload bytes.
    pub bytes: u64,
}

/// A bounded ring buffer of the last N ingest events — the "flight
/// recorder" dumped alongside any health event so an operator sees what
/// the wire looked like just before an anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    events: VecDeque<IngestEvent>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (`cap = 0`
    /// disables recording but still counts sequence numbers).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            next_seq: 0,
            events: VecDeque::with_capacity(cap.min(1024)),
        }
    }

    /// Appends one event, evicting the oldest past capacity.
    pub fn record(&mut self, prov: &Provenance, outcome: DecodeOutcome, bytes: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(IngestEvent {
            seq,
            client: prov.client,
            attempt: prov.attempt,
            cohort: prov.cohort_label().to_string(),
            outcome,
            bytes,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &IngestEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (retained or evicted).
    pub fn seen(&self) -> u64 {
        self.next_seq
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Renders the retained tail as an aligned, integer-only table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder: last {} of {} ingest events\n",
            self.events.len(),
            self.seen(),
        ));
        if self.events.is_empty() {
            return out;
        }
        out.push_str("  seq      client  attempt  bytes    outcome                cohort\n");
        for e in &self.events {
            out.push_str(&format!(
                "  {:<7}  {:<6}  {:<7}  {:<7}  {:<21}  {}\n",
                e.seq,
                e.client,
                e.attempt,
                e.bytes,
                e.outcome.to_string(),
                e.cohort,
            ));
        }
        out
    }
}

impl Default for FlightRecorder {
    /// A recorder with the default 64-event window.
    fn default() -> FlightRecorder {
        FlightRecorder::new(64)
    }
}

/// The integer-valued state of the community at one epoch boundary.
///
/// All fields are cumulative from the start of the stream, not
/// per-epoch deltas, so any snapshot answers "after N community runs…"
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSnapshot {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Community runs (reports) folded in so far.
    pub runs: u64,
    /// Failure-labelled runs so far.
    pub failures: u64,
    /// Counters observed (nonzero) at least once.
    pub observed: usize,
    /// Survivors of combined §3.2 elimination.
    pub survivors: usize,
    /// Detection latency of the target counter (runs, 1-based).
    pub target_latency: Option<usize>,
    /// 0-based rank of the target counter in the regression ordering.
    pub target_rank: Option<usize>,
    /// Wire bytes accepted so far (as attributed by the transport).
    pub bytes: u64,
    /// Batches accepted so far.
    pub batches: u64,
    /// Batches rejected so far (malformed or mismatched).
    pub rejected_batches: u64,
    /// Rejections specifically from stale-version layout mismatches.
    pub stale_batches: u64,
    /// Committed batches whose delivered bytes were altered in flight.
    pub corrupt_batches: u64,
    /// Delivery retries attributed by the transport.
    pub retries: u64,
    /// Rejection totals by typed wire-error kind (absent kinds never
    /// occurred).
    pub rejected_by_kind: BTreeMap<WireErrorKind, u64>,
    /// Per-cohort ingest accounting, keyed by cohort label.
    pub cohorts: BTreeMap<String, CohortStats>,
}

/// A [`ReportSink`] that folds a community stream and snapshots the
/// aggregate state every `epoch_len` runs.
#[derive(Debug, Clone)]
pub struct EpochAggregator {
    sites: SiteTable,
    target_counter: Option<usize>,
    epoch_len: u64,
    analyzer: StreamingAnalyzer,
    first: FirstObservation,
    runs: u64,
    failures: u64,
    bytes: u64,
    batches: u64,
    rejected_batches: u64,
    stale_batches: u64,
    corrupt_batches: u64,
    retries: u64,
    rejected_by_kind: BTreeMap<WireErrorKind, u64>,
    cohorts: BTreeMap<String, CohortStats>,
    flight: FlightRecorder,
    snapshots: Vec<EpochSnapshot>,
}

impl EpochAggregator {
    /// Creates an aggregator for a stream instrumented per `sites`,
    /// snapshotting every `epoch_len` runs.  `target_counter` is the
    /// ground-truth counter (e.g. a planted bug's true predicate) whose
    /// latency and rank each snapshot reports.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(
        sites: SiteTable,
        epoch_len: u64,
        config: StreamingConfig,
        target_counter: Option<usize>,
    ) -> Self {
        assert!(epoch_len > 0, "epoch length must be nonzero");
        let counters = sites.total_counters();
        EpochAggregator {
            sites,
            target_counter,
            epoch_len,
            analyzer: StreamingAnalyzer::new(config),
            first: FirstObservation::new(counters),
            runs: 0,
            failures: 0,
            bytes: 0,
            batches: 0,
            rejected_batches: 0,
            stale_batches: 0,
            corrupt_batches: 0,
            retries: 0,
            rejected_by_kind: BTreeMap::new(),
            cohorts: BTreeMap::new(),
            flight: FlightRecorder::default(),
            snapshots: Vec::new(),
        }
    }

    /// Replaces the flight recorder with one retaining `cap` events.
    #[must_use]
    pub fn with_flight_capacity(mut self, cap: usize) -> Self {
        self.flight = FlightRecorder::new(cap);
        self
    }

    /// Records one delivered batch with full provenance: who sent it, on
    /// which attempt, and how decoding went.  Accepted batches (clean or
    /// corrupt-but-decodable) are attributed their wire bytes; rejected
    /// ones land in the per-kind and stale tallies.  Everything is also
    /// folded into the sender's cohort stats and the flight recorder.
    pub fn note_batch(&mut self, prov: &Provenance, outcome: DecodeOutcome, bytes: u64) {
        self.flight.record(prov, outcome, bytes);
        let cohort = self
            .cohorts
            .entry(prov.cohort_label().to_string())
            .or_default();
        match outcome {
            DecodeOutcome::Clean => {
                self.batches += 1;
                self.bytes += bytes;
                cohort.batches += 1;
                cohort.bytes += bytes;
            }
            DecodeOutcome::CorruptButDecodable => {
                self.batches += 1;
                self.bytes += bytes;
                self.corrupt_batches += 1;
                cohort.batches += 1;
                cohort.bytes += bytes;
                cohort.corrupt += 1;
            }
            DecodeOutcome::Rejected(kind) => {
                self.rejected_batches += 1;
                *self.rejected_by_kind.entry(kind).or_default() += 1;
                cohort.rejected += 1;
                if kind == WireErrorKind::LayoutHashMismatch {
                    self.stale_batches += 1;
                    cohort.stale += 1;
                }
            }
        }
    }

    /// Attributes `n` delivery retries to a cohort (the transport calls
    /// this once per batch with its extra attempts beyond the first).
    pub fn note_retries(&mut self, cohort: &str, n: u64) {
        if n == 0 {
            return;
        }
        self.retries += n;
        self.cohorts.entry(cohort.to_string()).or_default().retries += n;
    }

    /// Attributes one accepted batch's wire bytes to the stream.
    ///
    /// Provenance-free convenience over [`note_batch`](Self::note_batch):
    /// the batch lands in the `"unknown"` cohort as a clean decode.
    pub fn note_accepted_batch(&mut self, bytes: u64) {
        self.note_batch(&Provenance::new(0, 0), DecodeOutcome::Clean, bytes);
    }

    /// Records one rejected batch; `stale` marks a layout-hash
    /// handshake rejection (a stale-version client).
    ///
    /// Provenance-free convenience over [`note_batch`](Self::note_batch):
    /// a non-stale rejection is tallied as [`WireErrorKind::Truncated`],
    /// the catch-all for malformed streams of unknown kind.
    pub fn note_rejected_batch(&mut self, stale: bool) {
        let kind = if stale {
            WireErrorKind::LayoutHashMismatch
        } else {
            WireErrorKind::Truncated
        };
        self.note_batch(&Provenance::new(0, 0), DecodeOutcome::Rejected(kind), 0);
    }

    /// Takes the current-state snapshot without waiting for an epoch
    /// boundary (used to close a partial final epoch).
    pub fn snapshot_now(&mut self) {
        let snap = self.snapshot(self.snapshots.len());
        self.snapshots.push(snap);
    }

    fn snapshot(&self, epoch: usize) -> EpochSnapshot {
        let survivors = self.analyzer.eliminate(&self.sites).combined.len();
        let target_rank = self.target_counter.and_then(|c| {
            self.analyzer
                .ranking()
                .iter()
                .position(|&(counter, _)| counter == c)
        });
        EpochSnapshot {
            epoch,
            runs: self.runs,
            failures: self.failures,
            observed: self.first.observed_count(),
            survivors,
            target_latency: self
                .target_counter
                .and_then(|c| self.first.latency_of_counter(c)),
            target_rank,
            bytes: self.bytes,
            batches: self.batches,
            rejected_batches: self.rejected_batches,
            stale_batches: self.stale_batches,
            corrupt_batches: self.corrupt_batches,
            retries: self.retries,
            rejected_by_kind: self.rejected_by_kind.clone(),
            cohorts: self.cohorts.clone(),
        }
    }

    /// Epoch snapshots closed so far, oldest first.
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        &self.snapshots
    }

    /// The underlying streaming analyzer.
    pub fn analyzer(&self) -> &StreamingAnalyzer {
        &self.analyzer
    }

    /// The shared first-observation record.
    pub fn first_observation(&self) -> &FirstObservation {
        &self.first
    }

    /// The site table the stream is scored against.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Detection latency (1-based) of the earliest-observed predicate
    /// whose name contains `needle`.
    pub fn latency_of(&self, needle: &str) -> Option<usize> {
        self.first.latency_of(&self.sites, needle)
    }

    /// Community runs folded so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Failure-labelled runs folded so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Wire bytes attributed via [`note_accepted_batch`](Self::note_accepted_batch).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Committed batches whose delivered bytes were altered in flight.
    pub fn corrupt_batches(&self) -> u64 {
        self.corrupt_batches
    }

    /// Rejection totals by typed wire-error kind.
    pub fn rejected_by_kind(&self) -> &BTreeMap<WireErrorKind, u64> {
        &self.rejected_by_kind
    }

    /// Per-cohort ingest accounting, keyed by cohort label.
    pub fn cohorts(&self) -> &BTreeMap<String, CohortStats> {
        &self.cohorts
    }

    /// The bounded ring buffer of recent ingest events.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }
}

impl ReportSink for EpochAggregator {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        self.analyzer.begin(layout)
    }

    /// Folds one report.  The report's `run_id` is taken as its 0-based
    /// community run index for latency purposes, so detection latency is
    /// independent of batch arrival order.
    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        self.first.record(report.run_id as usize, &report.counters);
        if report.label == Label::Failure {
            self.failures += 1;
        }
        self.analyzer.accept(report)?;
        self.runs += 1;
        if self.runs.is_multiple_of(self.epoch_len) {
            self.snapshot_now();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_instrument::{instrument, Scheme};

    fn sites() -> SiteTable {
        let program = cbi_minic::parse(
            "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
             fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }",
        )
        .unwrap();
        instrument(&program, Scheme::Returns).unwrap().sites
    }

    fn aggregator(epoch_len: u64, target: Option<usize>) -> EpochAggregator {
        EpochAggregator::new(sites(), epoch_len, StreamingConfig::default(), target)
    }

    fn report(run_id: u64, fail: bool, hot: usize, counters: usize) -> Report {
        let mut values = vec![0u64; counters];
        values[hot] = 1;
        let label = if fail { Label::Failure } else { Label::Success };
        Report::new(run_id, label, values)
    }

    #[test]
    fn epochs_close_every_epoch_len_runs() {
        let n = sites().total_counters();
        let mut agg = aggregator(3, None);
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: sites().layout_hash(),
        })
        .unwrap();
        for i in 0..7u64 {
            agg.accept(report(i, i % 2 == 0, (i as usize) % n, n))
                .unwrap();
        }
        assert_eq!(agg.snapshots().len(), 2, "epochs at runs 3 and 6");
        assert_eq!(agg.snapshots()[0].runs, 3);
        assert_eq!(agg.snapshots()[1].runs, 6);
        agg.snapshot_now();
        assert_eq!(agg.snapshots()[2].runs, 7);
        assert_eq!(agg.snapshots()[2].epoch, 2);
        assert_eq!(agg.snapshots()[2].failures, 4);
    }

    #[test]
    fn target_latency_tracks_first_observation_by_run_id() {
        let table = sites();
        let n = table.total_counters();
        let target = (0..n)
            .find(|&c| table.predicate_name(c).contains("rare() > 0"))
            .unwrap();
        let mut agg = aggregator(10, Some(target));
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: table.layout_hash(),
        })
        .unwrap();
        // The hit arrives in a late batch but carries run_id 4: latency
        // must be 5 (1-based), not the arrival position.
        agg.accept(report(9, false, (target + 1) % n, n)).unwrap();
        agg.accept(report(4, true, target, n)).unwrap();
        agg.snapshot_now();
        let snap = &agg.snapshots()[0];
        assert_eq!(snap.target_latency, Some(5));
        assert_eq!(snap.observed, 2);
        assert!(snap.target_rank.is_some());
        assert_eq!(agg.latency_of("rare() > 0"), Some(5));
    }

    #[test]
    fn batch_accounting_reaches_snapshots() {
        let n = sites().total_counters();
        let mut agg = aggregator(1, None);
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: sites().layout_hash(),
        })
        .unwrap();
        agg.note_accepted_batch(120);
        agg.note_rejected_batch(true);
        agg.note_rejected_batch(false);
        agg.accept(report(0, false, 0, n)).unwrap();
        let snap = &agg.snapshots()[0];
        assert_eq!(snap.bytes, 120);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.rejected_batches, 2);
        assert_eq!(snap.stale_batches, 1);
    }

    #[test]
    fn note_rejected_batch_stale_and_kind_accounting() {
        let n = sites().total_counters();
        let mut agg = aggregator(1, None);
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: sites().layout_hash(),
        })
        .unwrap();
        // Legacy wrappers: stale maps to a layout-hash rejection, other
        // to the truncation catch-all; neither commits bytes.
        agg.note_rejected_batch(true);
        agg.note_rejected_batch(true);
        agg.note_rejected_batch(false);
        agg.accept(report(0, false, 0, n)).unwrap();
        let snap = &agg.snapshots()[0];
        assert_eq!(snap.rejected_batches, 3);
        assert_eq!(snap.stale_batches, 2);
        assert_eq!(snap.corrupt_batches, 0);
        assert_eq!(snap.bytes, 0);
        assert_eq!(
            snap.rejected_by_kind
                .get(&WireErrorKind::LayoutHashMismatch),
            Some(&2)
        );
        assert_eq!(
            snap.rejected_by_kind.get(&WireErrorKind::Truncated),
            Some(&1)
        );
        let total: u64 = snap.rejected_by_kind.values().sum();
        assert_eq!(total, snap.rejected_batches);
    }

    #[test]
    fn note_batch_attributes_corruption_and_cohorts() {
        let n = sites().total_counters();
        let mut agg = aggregator(1, None).with_flight_capacity(2);
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: sites().layout_hash(),
        })
        .unwrap();
        let clean = Provenance::new(1, 0).with_cohort("1/100");
        let noisy = Provenance::new(2, 1).with_cohort("1/1000+stale");
        agg.note_batch(&clean, DecodeOutcome::Clean, 100);
        agg.note_batch(&noisy, DecodeOutcome::CorruptButDecodable, 80);
        agg.note_batch(
            &noisy,
            DecodeOutcome::Rejected(WireErrorKind::LayoutHashMismatch),
            0,
        );
        agg.note_retries("1/1000+stale", 2);
        agg.accept(report(0, false, 0, n)).unwrap();

        let snap = &agg.snapshots()[0];
        assert_eq!(snap.batches, 2, "clean + corrupt-but-decodable commit");
        assert_eq!(snap.corrupt_batches, 1);
        assert_eq!(snap.rejected_batches, 1);
        assert_eq!(snap.stale_batches, 1);
        assert_eq!(snap.bytes, 180);
        assert_eq!(snap.retries, 2);

        let c = snap.cohorts.get("1/100").unwrap();
        assert_eq!((c.batches, c.bytes, c.corrupt), (1, 100, 0));
        let s = snap.cohorts.get("1/1000+stale").unwrap();
        assert_eq!(s.batches, 1);
        assert_eq!(s.corrupt, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.stale, 1);
        assert_eq!(s.retries, 2);

        // Flight recorder kept only the last two of three events.
        let flight = agg.flight_recorder();
        assert_eq!(flight.seen(), 3);
        let seqs: Vec<u64> = flight.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        let rendered = flight.render();
        assert!(rendered.contains("last 2 of 3"), "{rendered}");
        assert!(
            rendered.contains("rejected(layout_hash_mismatch)"),
            "{rendered}"
        );
        assert!(!rendered.contains('.'), "integer-only: {rendered}");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_epoch_len_panics() {
        let _ = aggregator(0, None);
    }
}
