//! Per-epoch aggregation over a community report stream.
//!
//! §3.1.3 frames detection as a function of *community runs*: "sixty
//! million Office XP licenses … produce 230,258 runs every nineteen
//! minutes".  An [`EpochAggregator`] extends the streaming server side
//! with exactly that view: it folds every accepted report into the
//! O(counters) [`StreamingAnalyzer`] state plus a shared
//! [`FirstObservation`] record, and every `epoch_len` runs it closes an
//! epoch and snapshots the questions a deployment operator asks —
//! detection latency of a target predicate, elimination-survivor count,
//! regression rank against ground truth, failure counts, and bytes on
//! the wire.
//!
//! The aggregator is itself a [`ReportSink`], so it can sit behind the
//! transactional batch ingest exactly where a plain analyzer would.

use crate::detection::FirstObservation;
use crate::streaming::{StreamingAnalyzer, StreamingConfig};
use cbi_instrument::SiteTable;
use cbi_reports::{Label, Report, ReportLayout, ReportSink, SinkError};

/// The integer-valued state of the community at one epoch boundary.
///
/// All fields are cumulative from the start of the stream, not
/// per-epoch deltas, so any snapshot answers "after N community runs…"
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSnapshot {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Community runs (reports) folded in so far.
    pub runs: u64,
    /// Failure-labelled runs so far.
    pub failures: u64,
    /// Counters observed (nonzero) at least once.
    pub observed: usize,
    /// Survivors of combined §3.2 elimination.
    pub survivors: usize,
    /// Detection latency of the target counter (runs, 1-based).
    pub target_latency: Option<usize>,
    /// 0-based rank of the target counter in the regression ordering.
    pub target_rank: Option<usize>,
    /// Wire bytes accepted so far (as attributed by the transport).
    pub bytes: u64,
    /// Batches accepted so far.
    pub batches: u64,
    /// Batches rejected so far (malformed or mismatched).
    pub rejected_batches: u64,
    /// Rejections specifically from stale-version layout mismatches.
    pub stale_batches: u64,
}

/// A [`ReportSink`] that folds a community stream and snapshots the
/// aggregate state every `epoch_len` runs.
#[derive(Debug, Clone)]
pub struct EpochAggregator {
    sites: SiteTable,
    target_counter: Option<usize>,
    epoch_len: u64,
    analyzer: StreamingAnalyzer,
    first: FirstObservation,
    runs: u64,
    failures: u64,
    bytes: u64,
    batches: u64,
    rejected_batches: u64,
    stale_batches: u64,
    snapshots: Vec<EpochSnapshot>,
}

impl EpochAggregator {
    /// Creates an aggregator for a stream instrumented per `sites`,
    /// snapshotting every `epoch_len` runs.  `target_counter` is the
    /// ground-truth counter (e.g. a planted bug's true predicate) whose
    /// latency and rank each snapshot reports.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(
        sites: SiteTable,
        epoch_len: u64,
        config: StreamingConfig,
        target_counter: Option<usize>,
    ) -> Self {
        assert!(epoch_len > 0, "epoch length must be nonzero");
        let counters = sites.total_counters();
        EpochAggregator {
            sites,
            target_counter,
            epoch_len,
            analyzer: StreamingAnalyzer::new(config),
            first: FirstObservation::new(counters),
            runs: 0,
            failures: 0,
            bytes: 0,
            batches: 0,
            rejected_batches: 0,
            stale_batches: 0,
            snapshots: Vec::new(),
        }
    }

    /// Attributes one accepted batch's wire bytes to the stream.
    pub fn note_accepted_batch(&mut self, bytes: u64) {
        self.batches += 1;
        self.bytes += bytes;
    }

    /// Records one rejected batch; `stale` marks a layout-hash
    /// handshake rejection (a stale-version client).
    pub fn note_rejected_batch(&mut self, stale: bool) {
        self.rejected_batches += 1;
        if stale {
            self.stale_batches += 1;
        }
    }

    /// Takes the current-state snapshot without waiting for an epoch
    /// boundary (used to close a partial final epoch).
    pub fn snapshot_now(&mut self) {
        let snap = self.snapshot(self.snapshots.len());
        self.snapshots.push(snap);
    }

    fn snapshot(&self, epoch: usize) -> EpochSnapshot {
        let survivors = self.analyzer.eliminate(&self.sites).combined.len();
        let target_rank = self.target_counter.and_then(|c| {
            self.analyzer
                .ranking()
                .iter()
                .position(|&(counter, _)| counter == c)
        });
        EpochSnapshot {
            epoch,
            runs: self.runs,
            failures: self.failures,
            observed: self.first.observed_count(),
            survivors,
            target_latency: self
                .target_counter
                .and_then(|c| self.first.latency_of_counter(c)),
            target_rank,
            bytes: self.bytes,
            batches: self.batches,
            rejected_batches: self.rejected_batches,
            stale_batches: self.stale_batches,
        }
    }

    /// Epoch snapshots closed so far, oldest first.
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        &self.snapshots
    }

    /// The underlying streaming analyzer.
    pub fn analyzer(&self) -> &StreamingAnalyzer {
        &self.analyzer
    }

    /// The shared first-observation record.
    pub fn first_observation(&self) -> &FirstObservation {
        &self.first
    }

    /// The site table the stream is scored against.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Detection latency (1-based) of the earliest-observed predicate
    /// whose name contains `needle`.
    pub fn latency_of(&self, needle: &str) -> Option<usize> {
        self.first.latency_of(&self.sites, needle)
    }

    /// Community runs folded so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Failure-labelled runs folded so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Wire bytes attributed via [`note_accepted_batch`](Self::note_accepted_batch).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl ReportSink for EpochAggregator {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        self.analyzer.begin(layout)
    }

    /// Folds one report.  The report's `run_id` is taken as its 0-based
    /// community run index for latency purposes, so detection latency is
    /// independent of batch arrival order.
    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        self.first.record(report.run_id as usize, &report.counters);
        if report.label == Label::Failure {
            self.failures += 1;
        }
        self.analyzer.accept(report)?;
        self.runs += 1;
        if self.runs.is_multiple_of(self.epoch_len) {
            self.snapshot_now();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_instrument::{instrument, Scheme};

    fn sites() -> SiteTable {
        let program = cbi_minic::parse(
            "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
             fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }",
        )
        .unwrap();
        instrument(&program, Scheme::Returns).unwrap().sites
    }

    fn aggregator(epoch_len: u64, target: Option<usize>) -> EpochAggregator {
        EpochAggregator::new(sites(), epoch_len, StreamingConfig::default(), target)
    }

    fn report(run_id: u64, fail: bool, hot: usize, counters: usize) -> Report {
        let mut values = vec![0u64; counters];
        values[hot] = 1;
        let label = if fail { Label::Failure } else { Label::Success };
        Report::new(run_id, label, values)
    }

    #[test]
    fn epochs_close_every_epoch_len_runs() {
        let n = sites().total_counters();
        let mut agg = aggregator(3, None);
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: sites().layout_hash(),
        })
        .unwrap();
        for i in 0..7u64 {
            agg.accept(report(i, i % 2 == 0, (i as usize) % n, n))
                .unwrap();
        }
        assert_eq!(agg.snapshots().len(), 2, "epochs at runs 3 and 6");
        assert_eq!(agg.snapshots()[0].runs, 3);
        assert_eq!(agg.snapshots()[1].runs, 6);
        agg.snapshot_now();
        assert_eq!(agg.snapshots()[2].runs, 7);
        assert_eq!(agg.snapshots()[2].epoch, 2);
        assert_eq!(agg.snapshots()[2].failures, 4);
    }

    #[test]
    fn target_latency_tracks_first_observation_by_run_id() {
        let table = sites();
        let n = table.total_counters();
        let target = (0..n)
            .find(|&c| table.predicate_name(c).contains("rare() > 0"))
            .unwrap();
        let mut agg = aggregator(10, Some(target));
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: table.layout_hash(),
        })
        .unwrap();
        // The hit arrives in a late batch but carries run_id 4: latency
        // must be 5 (1-based), not the arrival position.
        agg.accept(report(9, false, (target + 1) % n, n)).unwrap();
        agg.accept(report(4, true, target, n)).unwrap();
        agg.snapshot_now();
        let snap = &agg.snapshots()[0];
        assert_eq!(snap.target_latency, Some(5));
        assert_eq!(snap.observed, 2);
        assert!(snap.target_rank.is_some());
        assert_eq!(agg.latency_of("rare() > 0"), Some(5));
    }

    #[test]
    fn batch_accounting_reaches_snapshots() {
        let n = sites().total_counters();
        let mut agg = aggregator(1, None);
        agg.begin(ReportLayout {
            counters: n,
            layout_hash: sites().layout_hash(),
        })
        .unwrap();
        agg.note_accepted_batch(120);
        agg.note_rejected_batch(true);
        agg.note_rejected_batch(false);
        agg.accept(report(0, false, 0, n)).unwrap();
        let snap = &agg.snapshots()[0];
        assert_eq!(snap.bytes, 120);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.rejected_batches, 2);
        assert_eq!(snap.stale_batches, 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_epoch_len_panics() {
        let _ = aggregator(0, None);
    }
}
