//! Streaming analysis over a report stream — §5's "sufficient
//! statistics" made operational.
//!
//! A [`StreamingAnalyzer`] is a [`ReportSink`] that folds each report
//! into fixed-size state the moment it arrives and then discards it:
//! per-counter [`SufficientStats`] for the §3.2 elimination strategies,
//! and an [`OnlineTrainer`] for the §3.3 crash predictor.  Memory use is
//! `O(counters)`, independent of how many trials stream through — the
//! [`high_water`](StreamingAnalyzer::high_water) gauge proves no report
//! vector ever accumulates.
//!
//! Because the analyzer's update sequence is determined entirely by the
//! report stream, a local analyzer fed by the campaign driver and a
//! remote one fed over the wire reach bit-identical state whenever the
//! streams are bit-identical — which the ordered campaign merge and the
//! framed wire format guarantee.

use crate::pipeline::{eliminate_stats, EliminationReport};
use cbi_instrument::SiteTable;
use cbi_reports::{Report, ReportLayout, ReportSink, SinkError, SufficientStats};
use cbi_stats::{LogisticModel, OnlineTrainer};

/// Hyper-parameters for the streaming crash predictor.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Stochastic-gradient learning rate.
    pub learning_rate: f64,
    /// ℓ₁ regularization strength.
    pub lambda: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            learning_rate: 0.05,
            lambda: 0.02,
        }
    }
}

/// A [`ReportSink`] that analyzes reports as they arrive and keeps none.
#[derive(Debug, Clone)]
pub struct StreamingAnalyzer {
    config: StreamingConfig,
    layout: Option<ReportLayout>,
    stats: SufficientStats,
    trainer: Option<OnlineTrainer>,
    resident: usize,
    high_water: usize,
    seen: u64,
}

impl StreamingAnalyzer {
    /// Creates an analyzer with the given predictor hyper-parameters.
    /// The counter layout is adopted from the sink's `begin` call.
    pub fn new(config: StreamingConfig) -> Self {
        StreamingAnalyzer {
            config,
            layout: None,
            stats: SufficientStats::new(0),
            trainer: None,
            resident: 0,
            high_water: 0,
            seen: 0,
        }
    }

    /// Reports folded in so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The most reports ever resident in the analyzer at once.  Stays at
    /// `1` no matter how long the stream: each report is folded into the
    /// aggregates and dropped before the next is accepted.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The layout announced by the stream, if any yet.
    pub fn layout(&self) -> Option<ReportLayout> {
        self.layout
    }

    /// The accumulated per-counter aggregates.
    pub fn stats(&self) -> &SufficientStats {
        &self.stats
    }

    /// A snapshot of the streaming crash-prediction model, or `None`
    /// before the first `begin`.
    pub fn model(&self) -> Option<LogisticModel> {
        self.trainer.as_ref().map(OnlineTrainer::model)
    }

    /// Runs the §3.2 elimination strategies over the accumulated
    /// aggregates, naming survivors from `sites`.
    pub fn eliminate(&self, sites: &SiteTable) -> EliminationReport {
        let groups: Vec<(usize, usize)> = sites
            .iter()
            .map(|s| (s.counter_base, s.kind.arity()))
            .collect();
        eliminate_stats(&self.stats, &groups, sites)
    }

    /// Counter indices ranked by streaming-model coefficient magnitude,
    /// largest first, with their weights.  Unlike the batch study the
    /// feature space is the full counter layout (no preprocessing), so
    /// indices are counter indices directly.
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        match self.model() {
            Some(model) => model
                .ranked_features()
                .into_iter()
                .map(|f| (f, model.weights[f]))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The top `n` ranked counters with human-readable predicate names.
    pub fn top_named(&self, sites: &SiteTable, n: usize) -> Vec<(String, f64)> {
        self.ranking()
            .into_iter()
            .take(n)
            .map(|(c, w)| (sites.predicate_name(c), w))
            .collect()
    }

    /// Per-counter contingency tables over the accumulated aggregates,
    /// with site-reach estimates from the site layout — the input every
    /// `cbi-scoring` measure consumes.
    pub fn contingency(&self, sites: &SiteTable) -> Vec<cbi_stats::Contingency> {
        let groups: Vec<(usize, usize)> = sites
            .iter()
            .map(|s| (s.counter_base, s.kind.arity()))
            .collect();
        cbi_stats::contingency_tables(&self.stats, &groups)
    }

    /// Counter indices ranked by a statistical scorer over the streamed
    /// aggregates, best first, scores in fixed-point per-mille.  Pure
    /// integer arithmetic end to end: byte-identical at any worker
    /// count, unlike the float-weighted regression [`ranking`](Self::ranking).
    pub fn scored_ranking(
        &self,
        sites: &SiteTable,
        scorer: &dyn cbi_scoring::Scorer,
    ) -> Vec<(usize, i64)> {
        cbi_scoring::rank_tables(scorer, &self.contingency(sites))
    }
}

impl ReportSink for StreamingAnalyzer {
    /// The first `begin` fixes the layout; later ones (stream
    /// continuations, further connections) must match it.
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        match self.layout {
            None => {
                self.stats = SufficientStats::new(layout.counters);
                self.trainer = Some(OnlineTrainer::new(
                    layout.counters,
                    self.config.learning_rate,
                    self.config.lambda,
                ));
                self.layout = Some(layout);
                Ok(())
            }
            Some(prev) if prev == layout => Ok(()),
            Some(prev) => Err(SinkError::Collect(
                cbi_reports::CollectError::LayoutMismatch {
                    expected: prev.counters,
                    got: layout.counters,
                },
            )),
        }
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        let trainer = self.trainer.as_mut().ok_or(SinkError::NotBegun)?;
        self.resident += 1;
        self.high_water = self.high_water.max(self.resident);
        self.stats.update(&report);
        trainer.update(
            &report.counters,
            report.label == cbi_reports::Label::Failure,
        );
        self.seen += 1;
        // `report` drops here: nothing below retains it.
        self.resident -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::Label;

    fn layout(counters: usize) -> ReportLayout {
        ReportLayout {
            counters,
            layout_hash: 0xfeed,
        }
    }

    #[test]
    fn accept_before_begin_is_rejected() {
        let mut a = StreamingAnalyzer::new(StreamingConfig::default());
        let err = a
            .accept(Report::new(0, Label::Success, vec![1]))
            .unwrap_err();
        assert!(matches!(err, SinkError::NotBegun));
    }

    #[test]
    fn aggregates_match_direct_updates() {
        let mut a = StreamingAnalyzer::new(StreamingConfig::default());
        a.begin(layout(2)).unwrap();
        a.accept(Report::new(0, Label::Success, vec![1, 0]))
            .unwrap();
        a.accept(Report::new(1, Label::Failure, vec![0, 3]))
            .unwrap();
        assert_eq!(a.seen(), 2);
        assert_eq!(a.high_water(), 1);
        assert_eq!(a.stats().failure_runs(), 1);
        assert_eq!(a.stats().nonzero_failures(1), 1);
        let model = a.model().unwrap();
        assert_eq!(model.weights.len(), 2);
    }

    #[test]
    fn later_begin_must_match_layout() {
        let mut a = StreamingAnalyzer::new(StreamingConfig::default());
        a.begin(layout(2)).unwrap();
        a.begin(layout(2)).unwrap();
        assert!(a.begin(layout(3)).is_err());
        // A different hash with the same width is also a mismatch.
        let err = a
            .begin(ReportLayout {
                counters: 2,
                layout_hash: 0xdead,
            })
            .unwrap_err();
        assert!(matches!(err, SinkError::Collect(_)));
    }
}
