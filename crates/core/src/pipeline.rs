//! High-level bug-isolation pipelines.
//!
//! These functions glue the whole system together the way the paper's case
//! studies do: run a campaign, then either eliminate predicates (§3.2) or
//! train a regularized crash predictor (§3.3), and report *named*
//! predicates ready for a human to read.

use cbi_instrument::SiteTable;
use cbi_reports::SufficientStats;
use cbi_stats::elimination::{apply, combine, survivor_count, survivors, Strategy};
use cbi_stats::{choose_lambda, Dataset, LogisticModel, TrainConfig};
use cbi_workloads::CampaignResult;
use std::error::Error;
use std::fmt;

/// Error from a statistical pipeline over collected reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The campaign produced no reports to analyze.
    NoReports,
    /// The requested train/cv split sizes exceed the report count.
    SplitExceedsReports {
        /// Requested training split size.
        train: usize,
        /// Requested cross-validation split size.
        cv: usize,
        /// Reports actually available.
        total: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoReports => write!(f, "no reports to analyze"),
            PipelineError::SplitExceedsReports { train, cv, total } => write!(
                f,
                "split sizes exceed report count: train {train} + cv {cv} > {total} reports"
            ),
        }
    }
}

impl Error for PipelineError {}

/// Results of the §3.2 predicate-elimination analysis.
#[derive(Debug, Clone)]
pub struct EliminationReport {
    /// Total runs analyzed.
    pub runs: usize,
    /// Failed runs among them.
    pub failures: usize,
    /// Survivor counts per strategy, applied independently:
    /// (universal falsehood, lack of failing coverage,
    ///  lack of failing example, successful counterexample).
    pub independent_survivors: [usize; 4],
    /// Counter indices surviving *universal falsehood ∧ successful
    /// counterexample* — predicates sometimes true in failures, never
    /// observed true in successes.
    pub combined: Vec<usize>,
    /// Human-readable names of the combined survivors.
    pub combined_names: Vec<String>,
}

/// Runs the four elimination strategies over a campaign's reports.
///
/// Reads only the collector's incrementally-maintained
/// [`SufficientStats`] — the raw report archive is never rescanned.
pub fn eliminate(result: &CampaignResult) -> EliminationReport {
    eliminate_stats(
        result.collector.stats(),
        &result.site_groups(),
        &result.instrumented.sites,
    )
}

/// Runs the four elimination strategies over bare sufficient statistics.
///
/// This is the aggregate-only core of [`eliminate`]: everything the §3.2
/// strategies need fits in [`SufficientStats`], so the same analysis runs
/// identically over an in-memory campaign, a spool file, or a live ingest
/// stream that discarded each report on arrival.
pub fn eliminate_stats(
    stats: &SufficientStats,
    groups: &[(usize, usize)],
    sites: &SiteTable,
) -> EliminationReport {
    let _span = cbi_telemetry::span("analyze.eliminate");

    let uf = apply(stats, Strategy::UniversalFalsehood, groups);
    let cov = apply(stats, Strategy::LackOfFailingCoverage, groups);
    let ex = apply(stats, Strategy::LackOfFailingExample, groups);
    let sc = apply(stats, Strategy::SuccessfulCounterexample, groups);

    let combined_mask = combine(&[uf.clone(), sc.clone()]);
    let combined = survivors(&combined_mask);
    let combined_names = combined.iter().map(|&c| sites.predicate_name(c)).collect();

    EliminationReport {
        runs: (stats.success_runs() + stats.failure_runs()) as usize,
        failures: stats.failure_runs() as usize,
        independent_survivors: [
            survivor_count(&uf),
            survivor_count(&cov),
            survivor_count(&ex),
            survivor_count(&sc),
        ],
        combined,
        combined_names,
    }
}

/// Results of the §3.3 logistic-regression analysis.
#[derive(Debug, Clone)]
pub struct RegressionStudy {
    /// Total counters in the report layout.
    pub total_counters: usize,
    /// Features surviving universal-falsehood preprocessing.
    pub effective_features: usize,
    /// Cross-validated regularization strength.
    pub lambda: f64,
    /// Classification accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// Failed-run fraction of the analyzed reports.
    pub failure_rate: f64,
    /// Predicate names ranked by |β|, largest first, with their β.
    pub ranked: Vec<(String, f64)>,
    /// Counter index per ranked entry (parallel to `ranked`).
    pub ranked_counters: Vec<usize>,
}

impl RegressionStudy {
    /// The top `n` ranked predicates.
    pub fn top(&self, n: usize) -> &[(String, f64)] {
        &self.ranked[..n.min(self.ranked.len())]
    }

    /// 0-based rank of the first predicate whose name contains `needle`.
    pub fn rank_of(&self, needle: &str) -> Option<usize> {
        self.ranked
            .iter()
            .position(|(name, _)| name.contains(needle))
    }
}

/// Configuration for [`regress`].
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Training split size.
    pub train: usize,
    /// Cross-validation split size (test takes the remainder).
    pub cv: usize,
    /// Candidate λ values for cross-validation.
    pub lambdas: Vec<f64>,
    /// Base training hyper-parameters (λ is overridden by the sweep).
    pub train_config: TrainConfig,
    /// Split shuffle seed.
    pub split_seed: u64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        RegressionConfig {
            train: 0,
            cv: 0,
            lambdas: vec![0.1, 0.3, 1.0],
            train_config: TrainConfig::default(),
            split_seed: 4390,
        }
    }
}

impl RegressionConfig {
    /// Split sizes proportional to the paper's 2729 / 322 / 1339 of 4390.
    pub fn paper_proportions(total: usize) -> Self {
        RegressionConfig {
            train: total * 2729 / 4390,
            cv: total * 322 / 4390,
            ..RegressionConfig::default()
        }
    }
}

/// Trains the §3.3 crash predictor over a campaign's reports and ranks
/// predicates by coefficient magnitude.
///
/// # Errors
///
/// Returns [`PipelineError::NoReports`] if the campaign produced no
/// reports and [`PipelineError::SplitExceedsReports`] if the configured
/// split sizes exceed the report count.
pub fn regress(
    result: &CampaignResult,
    config: &RegressionConfig,
) -> Result<RegressionStudy, PipelineError> {
    let _span = cbi_telemetry::span("analyze.regress");
    let reports = result.collector.reports();
    if reports.is_empty() {
        return Err(PipelineError::NoReports);
    }
    if config.train + config.cv > reports.len() {
        return Err(PipelineError::SplitExceedsReports {
            train: config.train,
            cv: config.cv,
            total: reports.len(),
        });
    }

    let dataset = Dataset::from_reports(reports);
    let failure_rate = dataset.failure_count() as f64 / dataset.len() as f64;

    let (mut train, mut cv, mut test) = dataset.split(config.train, config.cv, config.split_seed);
    let scaler = train.fit_scale();
    cv.scale_with(&scaler);
    test.scale_with(&scaler);

    let choice = choose_lambda(&train, &cv, &config.lambdas, &config.train_config);
    let model: &LogisticModel = &choice.model;
    let test_accuracy = model.accuracy(&test);

    let ranked_features = model.ranked_features();
    let mut ranked = Vec::with_capacity(ranked_features.len());
    let mut ranked_counters = Vec::with_capacity(ranked_features.len());
    for &f in &ranked_features {
        let counter = dataset.feature_counters[f];
        ranked.push((
            result.instrumented.sites.predicate_name(counter),
            model.weights[f],
        ));
        ranked_counters.push(counter);
    }

    Ok(RegressionStudy {
        total_counters: result.instrumented.sites.total_counters(),
        effective_features: dataset.feature_count(),
        lambda: choice.lambda,
        test_accuracy,
        failure_rate,
        ranked,
        ranked_counters,
    })
}
