//! High-level bug-isolation pipelines.
//!
//! These functions glue the whole system together the way the paper's case
//! studies do: run a campaign, then either eliminate predicates (§3.2) or
//! train a regularized crash predictor (§3.3), and report *named*
//! predicates ready for a human to read.

use cbi_reports::SufficientStats;
use cbi_stats::elimination::{apply, combine, survivor_count, survivors, Strategy};
use cbi_stats::{choose_lambda, Dataset, LogisticModel, TrainConfig};
use cbi_workloads::CampaignResult;

/// Results of the §3.2 predicate-elimination analysis.
#[derive(Debug, Clone)]
pub struct EliminationReport {
    /// Total runs analyzed.
    pub runs: usize,
    /// Failed runs among them.
    pub failures: usize,
    /// Survivor counts per strategy, applied independently:
    /// (universal falsehood, lack of failing coverage,
    ///  lack of failing example, successful counterexample).
    pub independent_survivors: [usize; 4],
    /// Counter indices surviving *universal falsehood ∧ successful
    /// counterexample* — predicates sometimes true in failures, never
    /// observed true in successes.
    pub combined: Vec<usize>,
    /// Human-readable names of the combined survivors.
    pub combined_names: Vec<String>,
}

/// Runs the four elimination strategies over a campaign's reports.
pub fn eliminate(result: &CampaignResult) -> EliminationReport {
    let _span = cbi_telemetry::span("analyze.eliminate");
    let stats: SufficientStats = result.collector.reports().iter().cloned().collect();
    let groups = result.site_groups();

    let uf = apply(&stats, Strategy::UniversalFalsehood, &groups);
    let cov = apply(&stats, Strategy::LackOfFailingCoverage, &groups);
    let ex = apply(&stats, Strategy::LackOfFailingExample, &groups);
    let sc = apply(&stats, Strategy::SuccessfulCounterexample, &groups);

    let combined_mask = combine(&[uf.clone(), sc.clone()]);
    let combined = survivors(&combined_mask);
    let combined_names = combined
        .iter()
        .map(|&c| result.instrumented.sites.predicate_name(c))
        .collect();

    EliminationReport {
        runs: result.collector.len(),
        failures: result.collector.failure_count(),
        independent_survivors: [
            survivor_count(&uf),
            survivor_count(&cov),
            survivor_count(&ex),
            survivor_count(&sc),
        ],
        combined,
        combined_names,
    }
}

/// Results of the §3.3 logistic-regression analysis.
#[derive(Debug, Clone)]
pub struct RegressionStudy {
    /// Total counters in the report layout.
    pub total_counters: usize,
    /// Features surviving universal-falsehood preprocessing.
    pub effective_features: usize,
    /// Cross-validated regularization strength.
    pub lambda: f64,
    /// Classification accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// Failed-run fraction of the analyzed reports.
    pub failure_rate: f64,
    /// Predicate names ranked by |β|, largest first, with their β.
    pub ranked: Vec<(String, f64)>,
    /// Counter index per ranked entry (parallel to `ranked`).
    pub ranked_counters: Vec<usize>,
}

impl RegressionStudy {
    /// The top `n` ranked predicates.
    pub fn top(&self, n: usize) -> &[(String, f64)] {
        &self.ranked[..n.min(self.ranked.len())]
    }

    /// 0-based rank of the first predicate whose name contains `needle`.
    pub fn rank_of(&self, needle: &str) -> Option<usize> {
        self.ranked
            .iter()
            .position(|(name, _)| name.contains(needle))
    }
}

/// Configuration for [`regress`].
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Training split size.
    pub train: usize,
    /// Cross-validation split size (test takes the remainder).
    pub cv: usize,
    /// Candidate λ values for cross-validation.
    pub lambdas: Vec<f64>,
    /// Base training hyper-parameters (λ is overridden by the sweep).
    pub train_config: TrainConfig,
    /// Split shuffle seed.
    pub split_seed: u64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        RegressionConfig {
            train: 0,
            cv: 0,
            lambdas: vec![0.1, 0.3, 1.0],
            train_config: TrainConfig::default(),
            split_seed: 4390,
        }
    }
}

impl RegressionConfig {
    /// Split sizes proportional to the paper's 2729 / 322 / 1339 of 4390.
    pub fn paper_proportions(total: usize) -> Self {
        RegressionConfig {
            train: total * 2729 / 4390,
            cv: total * 322 / 4390,
            ..RegressionConfig::default()
        }
    }
}

/// Trains the §3.3 crash predictor over a campaign's reports and ranks
/// predicates by coefficient magnitude.
///
/// # Panics
///
/// Panics if the campaign produced no reports or the split sizes exceed
/// the report count.
pub fn regress(result: &CampaignResult, config: &RegressionConfig) -> RegressionStudy {
    let _span = cbi_telemetry::span("analyze.regress");
    let reports = result.collector.reports();
    assert!(!reports.is_empty(), "no reports to analyze");

    let dataset = Dataset::from_reports(reports);
    let failure_rate = dataset.failure_count() as f64 / dataset.len() as f64;

    let (mut train, mut cv, mut test) = dataset.split(config.train, config.cv, config.split_seed);
    let scaler = train.fit_scale();
    cv.scale_with(&scaler);
    test.scale_with(&scaler);

    let choice = choose_lambda(&train, &cv, &config.lambdas, &config.train_config);
    let model: &LogisticModel = &choice.model;
    let test_accuracy = model.accuracy(&test);

    let ranked_features = model.ranked_features();
    let mut ranked = Vec::with_capacity(ranked_features.len());
    let mut ranked_counters = Vec::with_capacity(ranked_features.len());
    for &f in &ranked_features {
        let counter = dataset.feature_counters[f];
        ranked.push((
            result.instrumented.sites.predicate_name(counter),
            model.weights[f],
        ));
        ranked_counters.push(counter);
    }

    RegressionStudy {
        total_counters: result.instrumented.sites.total_counters(),
        effective_features: dataset.feature_count(),
        lambda: choice.lambda,
        test_accuracy,
        failure_rate,
        ranked,
        ranked_counters,
    }
}
