//! Deployment simulation: the user community as a detection instrument.
//!
//! §3.1.3 argues that even 1/1000 sampling finds rare events quickly once
//! a community is large ("sixty million Office XP licenses … produce
//! 230,258 runs every nineteen minutes").  This module simulates such a
//! deployment run-by-run and measures *detection latency*: how many runs
//! the community performs before each predicate is first observed — an
//! empirical check of the closed-form [`cbi_stats::confidence`] numbers.

use crate::detection::FirstObservation;
use cbi_instrument::{
    apply_sampling, instrument, single_function_variants, Scheme, TransformOptions,
};
use cbi_reports::Collector;
use cbi_sampler::{CountdownBank, Pcg32, SamplingDensity};
use cbi_vm::Vm;
use cbi_workloads::{run_campaign, CampaignConfig, CampaignResult, WorkloadError};
use std::collections::HashMap;

/// Result of a simulated deployment.
#[derive(Debug)]
pub struct Deployment {
    /// The underlying campaign (instrumented program, site table, reports).
    pub campaign: CampaignResult,
    /// Per-counter record of the first run that observed it.
    pub first_observation: FirstObservation,
}

impl Deployment {
    /// Detection latency (runs until first observation, 1-based): the
    /// earliest observation among all predicates whose name contains
    /// `needle`, or `None` if no matching predicate was ever observed.
    pub fn latency_of(&self, needle: &str) -> Option<usize> {
        self.first_observation
            .latency_of(&self.campaign.instrumented.sites, needle)
    }

    /// Fraction of counters the community observed at least once.
    pub fn observed_fraction(&self) -> f64 {
        self.first_observation.observed_fraction()
    }

    /// The collected reports.
    pub fn reports(&self) -> &Collector {
        &self.campaign.collector
    }
}

/// Simulates a deployment: instruments `program`, then executes the runs
/// of the whole community (`trials`, in arrival order) under `config`.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation or execution setup fails.
pub fn simulate_deployment(
    program: &cbi_minic::Program,
    trials: &[Vec<i64>],
    config: &CampaignConfig,
) -> Result<Deployment, WorkloadError> {
    let campaign = run_campaign(program, trials, config)?;
    let mut first_observation = FirstObservation::new(campaign.collector.counter_count());
    for (i, report) in campaign.collector.reports().iter().enumerate() {
        first_observation.record(i, &report.counters);
    }
    Ok(Deployment {
        campaign,
        first_observation,
    })
}

/// Configuration of a variant fleet (§3.1.2: statically selective
/// sampling with *suspect code farmed out to a larger proportion of
/// users*).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Observation scheme.
    pub scheme: Scheme,
    /// Sampling density each user runs at.
    pub density: SamplingDensity,
    /// Relative assignment weight per function name; functions not listed
    /// get weight 1.  A weight of 5 sends five times as many users to the
    /// variant instrumenting that function.
    pub weights: Vec<(String, f64)>,
    /// Number of simulated users.
    pub users: usize,
    /// Seed for assignment and countdown banks.
    pub seed: u64,
}

/// Outcome of a variant-fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Users assigned to each function's variant.
    pub assignment: HashMap<String, usize>,
    /// Total observations collected per instrumented function.
    pub observations: HashMap<String, u64>,
}

/// Simulates a fleet where each user runs a *single-function* variant,
/// with suspect functions assigned to proportionally more users.
///
/// `trials[u]` is the input script user `u` runs (one run per user keeps
/// the simulation small; scale `users` instead of runs-per-user).
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation or execution fails.
///
/// # Panics
///
/// Panics if `trials` has fewer entries than `config.users` or the
/// program has no instrumentation sites.
pub fn simulate_variant_fleet(
    program: &cbi_minic::Program,
    trials: &[Vec<i64>],
    config: &FleetConfig,
) -> Result<FleetOutcome, WorkloadError> {
    assert!(trials.len() >= config.users, "need one trial per user");
    let inst = instrument(program, config.scheme)?;
    let variants = single_function_variants(&inst);
    assert!(
        !variants.is_empty(),
        "program has no instrumented functions"
    );

    // Transform each variant once.
    let mut compiled = Vec::with_capacity(variants.len());
    let mut cumulative = Vec::with_capacity(variants.len());
    let mut total_weight = 0.0;
    for v in &variants {
        let (exe, _) = apply_sampling(&v.program, &TransformOptions::default())?;
        let w = config
            .weights
            .iter()
            .find(|(name, _)| *name == v.function)
            .map_or(1.0, |(_, w)| *w);
        total_weight += w;
        cumulative.push(total_weight);
        compiled.push((v.function.clone(), exe));
    }

    let mut rng = Pcg32::new(config.seed);
    let mut assignment: HashMap<String, usize> = HashMap::new();
    let mut observations: HashMap<String, u64> = HashMap::new();
    for (u, input) in trials.iter().take(config.users).enumerate() {
        // Weighted variant choice.
        let x = rng.next_f64() * total_weight;
        let k = cumulative
            .partition_point(|&c| c <= x)
            .min(compiled.len() - 1);
        let (function, exe) = &compiled[k];
        *assignment.entry(function.clone()).or_insert(0) += 1;

        let bank = CountdownBank::generate(config.density, 1024, config.seed + u as u64);
        let result = Vm::new(exe)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(bank))
            .with_input(input.clone())
            .run()?;
        let observed: u64 = result.counters.iter().sum();
        *observations.entry(function.clone()).or_insert(0) += observed;
    }
    Ok(FleetOutcome {
        assignment,
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_instrument::Scheme;
    use cbi_sampler::SamplingDensity;
    use cbi_stats::{detection_probability, runs_needed};

    /// A program where `rare()` returns nonzero on roughly 1 in 12 runs
    /// (driven by the input).
    const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
         fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

    fn trials(n: usize) -> Vec<Vec<i64>> {
        (0..n as i64).map(|i| vec![i * 7 + 1]).collect()
    }

    #[test]
    fn community_detects_rare_events_near_the_closed_form_prediction() {
        let program = cbi_minic::parse(RARE).unwrap();
        let n = 4000;
        let density = SamplingDensity::one_in(10);
        let config = CampaignConfig::sampled(Scheme::Returns, density);
        let d = simulate_deployment(&program, &trials(n), &config).unwrap();

        // `rare() > 0` fires in 1/12 of runs; at 1/10 sampling the paper's
        // model says 95%-confidence detection needs about this many runs:
        let predicted = runs_needed(1.0 / 12.0, 0.1, 0.95) as usize;
        let latency = d
            .latency_of("rare(") // matches `rare() > 0` first? ensure below
            .expect("event must eventually be observed");
        // `latency_of` found the first counter mentioning rare(); check
        // the positive counter explicitly too.
        let latency_pos = d
            .latency_of("rare() > 0")
            .expect("positive counter observed");
        assert!(latency <= latency_pos);
        assert!(
            latency_pos <= predicted * 3,
            "latency {latency_pos} far exceeds prediction {predicted}"
        );
        // And the closed form is calibrated: detection probability at the
        // observed latency should not be astronomically small or large.
        let p = detection_probability(1.0 / 12.0, 0.1, latency_pos as u64);
        assert!(p > 0.01 && p < 0.9999, "p = {p}");
    }

    #[test]
    fn denser_sampling_detects_faster() {
        let program = cbi_minic::parse(RARE).unwrap();
        let runs = trials(4000);
        let lat = |den: u64| {
            let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(den));
            simulate_deployment(&program, &runs, &config)
                .unwrap()
                .latency_of("rare() > 0")
        };
        let dense = lat(2).expect("dense sampling observes the event");
        // Sparse sampling may never see the event at all — even stronger.
        if let Some(sparse) = lat(50) {
            assert!(
                dense <= sparse,
                "denser sampling should not be slower: {dense} vs {sparse}"
            );
        }
    }

    #[test]
    fn observed_fraction_grows_with_density() {
        let program = cbi_minic::parse(RARE).unwrap();
        let runs = trials(800);
        let frac = |den: u64| {
            let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(den));
            simulate_deployment(&program, &runs, &config)
                .unwrap()
                .observed_fraction()
        };
        assert!(frac(1) >= frac(100));
    }

    #[test]
    fn suspect_functions_get_proportionally_more_users() {
        use cbi_workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};
        let program = ccrypt_program();
        let trials = ccrypt_trials(600, 11, &CcryptTrialConfig::default());
        let config = FleetConfig {
            scheme: Scheme::Returns,
            density: SamplingDensity::one_in(5),
            weights: vec![("process_file".to_string(), 8.0)],
            users: 600,
            seed: 3,
        };
        let fleet = simulate_variant_fleet(&program, &trials, &config).unwrap();
        let suspect_users = fleet.assignment.get("process_file").copied().unwrap_or(0);
        let max_other = fleet
            .assignment
            .iter()
            .filter(|(f, _)| *f != "process_file")
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0);
        assert!(
            suspect_users > max_other * 3,
            "suspect function must dominate the fleet: {:?}",
            fleet.assignment
        );
        // More users on the suspect variant means more observations of
        // its sites than any other single function's.
        let suspect_obs = fleet.observations.get("process_file").copied().unwrap_or(0);
        assert!(suspect_obs > 0);
    }

    #[test]
    fn uniform_weights_spread_users() {
        use cbi_workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};
        let program = ccrypt_program();
        let trials = ccrypt_trials(400, 13, &CcryptTrialConfig::default());
        let config = FleetConfig {
            scheme: Scheme::Returns,
            density: SamplingDensity::one_in(5),
            weights: vec![],
            users: 400,
            seed: 5,
        };
        let fleet = simulate_variant_fleet(&program, &trials, &config).unwrap();
        assert!(fleet.assignment.len() >= 5, "{:?}", fleet.assignment);
        let max = fleet.assignment.values().max().copied().unwrap();
        let min = fleet.assignment.values().min().copied().unwrap();
        assert!(
            max < min * 4 + 20,
            "roughly uniform: {:?}",
            fleet.assignment
        );
    }

    #[test]
    fn unknown_predicates_have_no_latency() {
        let program = cbi_minic::parse(RARE).unwrap();
        let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::always());
        let d = simulate_deployment(&program, &trials(50), &config).unwrap();
        assert!(d.latency_of("no_such_predicate").is_none());
    }
}
