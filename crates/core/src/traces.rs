//! Partial traces with ordering information — the §2.5 future-work
//! extension.
//!
//! The deployed system discards observation order to keep reports compact;
//! the paper notes "we expect there are interesting applications that
//! require ordering information" and leaves them open.  This module
//! implements the most obvious one: **crash proximity**.  With a bounded
//! client-side trace ring buffer ([`cbi_vm::Vm::with_trace`]), a failure
//! report carries the last few observations in execution order, and
//! ranking predicates by how often they are the *final* observation before
//! a crash points directly at the failure site.

use cbi_instrument::{instrument, Scheme};
use cbi_sampler::{CountdownBank, SamplingDensity};
use cbi_vm::Vm;
use cbi_workloads::WorkloadError;
use std::collections::HashMap;

/// One ranked entry of the crash-proximity analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityEntry {
    /// Counter index of the predicate.
    pub counter: usize,
    /// Human-readable predicate name.
    pub predicate: String,
    /// In how many crashed runs this predicate was the last observation.
    pub last_in_crashes: usize,
}

/// Crash-proximity analysis results.
#[derive(Debug, Clone)]
pub struct ProximityReport {
    /// Crashed runs that carried a nonempty trace.
    pub crashes_with_traces: usize,
    /// Entries ranked by `last_in_crashes`, descending.
    pub ranked: Vec<ProximityEntry>,
}

/// Configuration for [`crash_proximity`].
#[derive(Debug, Clone, Copy)]
pub struct ProximityConfig {
    /// Observation scheme.
    pub scheme: Scheme,
    /// Sampling density (ordering data is most useful when dense).
    pub density: SamplingDensity,
    /// Client-side trace ring-buffer size.
    pub trace_limit: usize,
    /// Countdown bank seed base.
    pub seed: u64,
}

impl Default for ProximityConfig {
    fn default() -> Self {
        ProximityConfig {
            scheme: Scheme::Returns,
            density: SamplingDensity::always(),
            trace_limit: 8,
            seed: 7,
        }
    }
}

/// Runs `trials` with bounded trace capture and ranks predicates by how
/// often they are the final observation of a crashing run.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation or VM setup fails.
pub fn crash_proximity(
    program: &cbi_minic::Program,
    trials: &[Vec<i64>],
    config: &ProximityConfig,
) -> Result<ProximityReport, WorkloadError> {
    let inst = instrument(program, config.scheme)?;
    let (executable, _) = cbi_instrument::apply_sampling(
        &inst.program,
        &cbi_instrument::TransformOptions::default(),
    )?;

    let mut last_counts: HashMap<usize, usize> = HashMap::new();
    let mut crashes_with_traces = 0;
    for (i, input) in trials.iter().enumerate() {
        let bank = CountdownBank::generate(config.density, 1024, config.seed + i as u64);
        let result = Vm::new(&executable)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(bank))
            .with_input(input.clone())
            .with_trace(config.trace_limit)
            .run()?;
        if result.outcome.is_failure() {
            if let Some(&(counter, _)) = result.trace.last() {
                crashes_with_traces += 1;
                *last_counts.entry(counter).or_insert(0) += 1;
            }
        }
    }

    let mut ranked: Vec<ProximityEntry> = last_counts
        .into_iter()
        .map(|(counter, n)| ProximityEntry {
            counter,
            predicate: inst.sites.predicate_name(counter),
            last_in_crashes: n,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.last_in_crashes
            .cmp(&a.last_in_crashes)
            .then(a.counter.cmp(&b.counter))
    });
    Ok(ProximityReport {
        crashes_with_traces,
        ranked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

    #[test]
    fn last_observation_before_ccrypt_crash_is_the_null_readline() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(800, 42, &CcryptTrialConfig::default());
        let report = crash_proximity(&program, &trials, &ProximityConfig::default()).unwrap();

        assert!(report.crashes_with_traces > 10);
        let top = &report.ranked[0];
        assert!(
            top.predicate.contains("xreadline() == 0"),
            "top proximity predicate should be the EOF return: {:?}",
            report.ranked.iter().take(3).collect::<Vec<_>>()
        );
        // Ordering information is strictly sharper than the unordered
        // analysis here: every crash ends at the same predicate.
        assert_eq!(top.last_in_crashes, report.crashes_with_traces);
    }

    #[test]
    fn trace_ring_buffer_is_bounded() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(40, 3, &CcryptTrialConfig::default());
        let inst = instrument(&program, Scheme::Returns).unwrap();
        let (executable, _) = cbi_instrument::apply_sampling(
            &inst.program,
            &cbi_instrument::TransformOptions::default(),
        )
        .unwrap();
        for input in trials {
            let bank = CountdownBank::generate(SamplingDensity::always(), 64, 1);
            let r = Vm::new(&executable)
                .with_sites(&inst.sites)
                .with_sampling(Box::new(bank))
                .with_input(input)
                .with_trace(5)
                .run()
                .unwrap();
            assert!(r.trace.len() <= 5);
        }
    }

    #[test]
    fn traces_disabled_by_default() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(5, 3, &CcryptTrialConfig::default());
        let inst = instrument(&program, Scheme::Returns).unwrap();
        for input in trials {
            let r = Vm::new(&inst.program)
                .with_sites(&inst.sites)
                .with_input(input)
                .run()
                .unwrap();
            assert!(r.trace.is_empty());
        }
    }
}
