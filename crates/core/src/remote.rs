//! Loopback ingest server — the "central database" end of §1's feedback
//! loop, made a real network endpoint.
//!
//! This is the *legacy* single-threaded reference: connections are
//! served sequentially into one sink and nothing survives a crash.
//! Production deployments use the `cbi-serve` crate (sharded analyzers,
//! backpressure, batch acks with idempotent dedup, crash-safe journal),
//! which `cbi serve` now fronts; this server remains as the minimal
//! in-process baseline and the `--transmit` loopback endpoint for
//! tests.
//!
//! [`IngestServer`] listens on a TCP address, accepts framed wire-format
//! report streams (see `cbi_reports::wire`), validates each stream's
//! layout hash against the instrumented binary it is serving, and feeds
//! every report into a caller-supplied [`ReportSink`] — typically a
//! [`StreamingAnalyzer`](crate::streaming::StreamingAnalyzer) (aggregates
//! only) or a [`Collector`](cbi_reports::Collector) (full archive).
//!
//! Connections are served sequentially, one telemetry lane per
//! connection: each connection's `serve.*` counters and spans land on
//! their own worker label, so `cbi … --metrics` shows per-connection
//! ingest cost the same way campaign shards show per-worker cost.

use cbi_reports::{ReportLayout, ReportSink, SinkError, WireError, WireReader};
use cbi_telemetry as telemetry;
use std::error::Error;
use std::fmt;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Error from serving an ingest session.
#[derive(Debug)]
pub enum ServeError {
    /// Listener or connection I/O failed.
    Io(io::Error),
    /// A client stream was malformed or its layout did not match.
    Wire(WireError),
    /// The sink rejected the stream or a report.
    Sink(SinkError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "ingest i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "ingest stream error: {e}"),
            ServeError::Sink(e) => write!(f, "ingest sink error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Sink(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<SinkError> for ServeError {
    fn from(e: SinkError) -> Self {
        ServeError::Sink(e)
    }
}

/// What an ingest session saw, summed over its connections.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestSummary {
    /// Connections accepted and fully drained.
    pub connections: usize,
    /// Connections rejected or short-circuited by a malformed or
    /// mismatched stream — counted separately, never drained further.
    pub rejected: usize,
    /// Reports ingested.
    pub reports: u64,
    /// Wire bytes consumed (headers + frames).
    pub bytes: u64,
}

/// A loopback TCP ingest daemon for framed report streams.
#[derive(Debug)]
pub struct IngestServer {
    listener: TcpListener,
}

impl IngestServer {
    /// Binds to `addr` (use port `0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding fails.
    pub fn bind(addr: &str) -> io::Result<IngestServer> {
        Ok(IngestServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address actually bound — consult this after binding port `0`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the socket address is
    /// unavailable.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and drains `connections` sequential client streams into
    /// `sink`, then finishes the sink.
    ///
    /// Each stream's header is validated against `expected` when given
    /// (version, layout hash, and counter count — a client built from a
    /// different binary is rejected before any frame is decoded); the
    /// sink's own `begin` additionally enforces cross-connection layout
    /// agreement when `expected` is `None`.
    ///
    /// A malformed or mismatched client stream rejects that
    /// *connection* — counted in [`IngestSummary::rejected`] — and the
    /// server moves on to the next one; one bad client cannot end the
    /// session.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on listener I/O failure or sink
    /// rejection.
    pub fn serve<S: ReportSink>(
        &self,
        connections: usize,
        expected: Option<ReportLayout>,
        sink: &mut S,
    ) -> Result<IngestSummary, ServeError> {
        let _session = telemetry::span("serve.session");
        let mut summary = IngestSummary::default();
        for conn in 0..connections {
            let (stream, _peer) = self.listener.accept()?;
            // One telemetry lane per connection, mirroring campaign
            // workers: lane 0 stays the driver, connections are 1-based.
            telemetry::set_worker(conn as u32 + 1);
            let result = Self::drain(stream, expected, sink, &mut summary);
            telemetry::set_worker(telemetry::MAIN_WORKER);
            match result {
                Ok(()) => {}
                Err(ServeError::Wire(_) | ServeError::Io(_)) => {
                    summary.rejected += 1;
                    telemetry::count("serve.rejected", 1);
                }
                Err(err @ ServeError::Sink(_)) => return Err(err),
            }
        }
        sink.finish()?;
        Ok(summary)
    }

    /// Drains one client connection into the sink.
    fn drain<S: ReportSink>(
        stream: TcpStream,
        expected: Option<ReportLayout>,
        sink: &mut S,
        summary: &mut IngestSummary,
    ) -> Result<(), ServeError> {
        let _span = telemetry::span("serve.connection");
        telemetry::count("serve.connections", 1);
        let mut reader = WireReader::new(BufReader::new(stream))?;
        if let Some(layout) = expected {
            reader.expect_layout(layout.layout_hash, layout.counters)?;
        }
        let header = reader.header();
        sink.begin(ReportLayout {
            counters: header.counters,
            layout_hash: header.layout_hash,
        })?;
        while let Some(report) = reader.read_report()? {
            telemetry::count("serve.reports", 1);
            sink.accept(report)?;
        }
        telemetry::count("serve.bytes", reader.bytes_read());
        summary.connections += 1;
        summary.reports += reader.reports_read();
        summary.bytes += reader.bytes_read();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::{Collector, Label, Report, TransmitSink};

    fn reports() -> Vec<Report> {
        vec![
            Report::new(0, Label::Success, vec![1, 0, 2]),
            Report::new(1, Label::Failure, vec![0, 4, 0]),
            Report::new(2, Label::Success, vec![3, 0, 0]),
        ]
    }

    #[test]
    fn loopback_round_trip_into_collector() {
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let layout = ReportLayout {
            counters: 3,
            layout_hash: 0xabc,
        };

        let client = std::thread::spawn(move || {
            let mut sink = TransmitSink::connect(addr.to_string()).unwrap();
            sink.begin(layout).unwrap();
            for r in reports() {
                sink.accept(r).unwrap();
            }
            sink.finish().unwrap();
        });

        let mut collector = Collector::default();
        let summary = server.serve(1, Some(layout), &mut collector).unwrap();
        client.join().unwrap();

        assert_eq!(summary.connections, 1);
        assert_eq!(summary.reports, 3);
        assert!(summary.bytes > 0);
        assert_eq!(collector.reports(), &reports()[..]);
    }

    #[test]
    fn mismatched_layout_is_rejected_before_frames() {
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();

        let client = std::thread::spawn(move || {
            let mut sink = TransmitSink::connect(addr.to_string()).unwrap();
            sink.begin(ReportLayout {
                counters: 3,
                layout_hash: 0xbad,
            })
            .unwrap();
            for r in reports() {
                sink.accept(r).unwrap();
            }
            // The server may reset the connection after rejecting the
            // header; transmission errors past that point are expected.
            let _ = sink.finish();
        });

        let mut collector = Collector::default();
        let summary = server
            .serve(
                1,
                Some(ReportLayout {
                    counters: 3,
                    layout_hash: 0xabc,
                }),
                &mut collector,
            )
            .unwrap();
        client.join().unwrap();
        assert_eq!(summary.connections, 0, "a rejected stream is not drained");
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.reports, 0);
        assert!(collector.is_empty(), "no frame may land after rejection");
    }
}
