//! Detection-latency bookkeeping shared by deployment and fleet scoring.
//!
//! §3.1.3 measures the community as a detection instrument: how many runs
//! happen before a predicate is first observed.  [`FirstObservation`]
//! tracks, per counter, the earliest run index with a nonzero count.  It
//! is fed run-by-run by [`simulate_deployment`](crate::simulate_deployment)
//! and batch-by-batch by the fleet epoch scorer; because it keeps a
//! *minimum* per counter, the result is independent of arrival order, so
//! sharded simulations can fold observations in any interleaving and
//! still agree bit-for-bit.

use cbi_instrument::SiteTable;

/// Per-counter record of the earliest run that observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstObservation {
    first: Vec<Option<usize>>,
}

impl FirstObservation {
    /// An empty record for `counters` counters, none yet observed.
    pub fn new(counters: usize) -> Self {
        FirstObservation {
            first: vec![None; counters],
        }
    }

    /// Folds in one run's counter vector, identified by its 0-based run
    /// index.  Indices need not arrive in order: the record keeps the
    /// minimum index per counter, so any interleaving converges to the
    /// same state.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is wider than the record.
    pub fn record(&mut self, run_index: usize, counters: &[u64]) {
        assert!(
            counters.len() <= self.first.len(),
            "report wider than layout: {} > {}",
            counters.len(),
            self.first.len()
        );
        for (slot, &value) in self.first.iter_mut().zip(counters) {
            if value > 0 && slot.is_none_or(|seen| run_index < seen) {
                *slot = Some(run_index);
            }
        }
    }

    /// The 0-based index of the first run that observed counter `c`, or
    /// `None` if it was never observed (or `c` is out of range).
    pub fn first(&self, c: usize) -> Option<usize> {
        self.first.get(c).copied().flatten()
    }

    /// Number of counters tracked.
    pub fn counters(&self) -> usize {
        self.first.len()
    }

    /// Detection latency (runs until first observation, 1-based): the
    /// earliest observation among all predicates whose name contains
    /// `needle`, or `None` if no matching predicate was ever observed.
    pub fn latency_of(&self, sites: &SiteTable, needle: &str) -> Option<usize> {
        (0..sites.total_counters().min(self.first.len()))
            .filter(|&c| sites.predicate_name(c).contains(needle))
            .filter_map(|c| self.first[c])
            .min()
            .map(|i| i + 1)
    }

    /// Detection latency for one specific counter, 1-based.
    pub fn latency_of_counter(&self, c: usize) -> Option<usize> {
        self.first(c).map(|i| i + 1)
    }

    /// Fraction of counters observed at least once.
    pub fn observed_fraction(&self) -> f64 {
        let n = self.first.len();
        if n == 0 {
            return 0.0;
        }
        self.first.iter().filter(|o| o.is_some()).count() as f64 / n as f64
    }

    /// Count of counters observed at least once.
    pub fn observed_count(&self) -> usize {
        self.first.iter().filter(|o| o.is_some()).count()
    }

    /// The raw per-counter record.
    pub fn as_slice(&self) -> &[Option<usize>] {
        &self.first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_instrument::{instrument, Scheme};

    fn sites() -> SiteTable {
        let program = cbi_minic::parse(
            "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
             fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }",
        )
        .unwrap();
        instrument(&program, Scheme::Returns).unwrap().sites
    }

    #[test]
    fn records_earliest_run_per_counter() {
        let mut obs = FirstObservation::new(3);
        obs.record(5, &[0, 1, 0]);
        obs.record(2, &[1, 1, 0]);
        obs.record(9, &[1, 0, 1]);
        assert_eq!(obs.first(0), Some(2));
        assert_eq!(obs.first(1), Some(2));
        assert_eq!(obs.first(2), Some(9));
    }

    #[test]
    fn order_of_arrival_does_not_matter() {
        let folds: &[&[(usize, [u64; 2])]] = &[
            &[(0, [0, 1]), (3, [2, 0]), (7, [1, 1])],
            &[(7, [1, 1]), (0, [0, 1]), (3, [2, 0])],
            &[(3, [2, 0]), (7, [1, 1]), (0, [0, 1])],
        ];
        let states: Vec<FirstObservation> = folds
            .iter()
            .map(|fold| {
                let mut obs = FirstObservation::new(2);
                for (i, counters) in fold.iter() {
                    obs.record(*i, counters);
                }
                obs
            })
            .collect();
        assert_eq!(states[0], states[1]);
        assert_eq!(states[1], states[2]);
        assert_eq!(states[0].first(0), Some(3));
        assert_eq!(states[0].first(1), Some(0));
    }

    #[test]
    fn zero_counters_never_count_as_observations() {
        let mut obs = FirstObservation::new(2);
        obs.record(0, &[0, 0]);
        obs.record(1, &[0, 0]);
        assert_eq!(obs.first(0), None);
        assert_eq!(obs.observed_fraction(), 0.0);
        assert_eq!(obs.observed_count(), 0);
    }

    #[test]
    fn latency_is_one_based_minimum_over_matching_predicates() {
        let sites = sites();
        let n = sites.total_counters();
        let mut obs = FirstObservation::new(n);
        // Find the counter for the `rare() > 0` predicate and one other.
        let target = (0..n)
            .find(|&c| sites.predicate_name(c).contains("rare() > 0"))
            .unwrap();
        let mut counters = vec![0u64; n];
        counters[target] = 1;
        obs.record(41, &counters);
        assert_eq!(obs.latency_of(&sites, "rare() > 0"), Some(42));
        assert_eq!(obs.latency_of_counter(target), Some(42));
        assert_eq!(obs.latency_of(&sites, "no_such_predicate"), None);
    }

    #[test]
    fn observed_fraction_counts_distinct_counters() {
        let mut obs = FirstObservation::new(4);
        obs.record(0, &[1, 0, 0, 0]);
        obs.record(1, &[1, 1, 0, 0]);
        assert_eq!(obs.observed_fraction(), 0.5);
        assert_eq!(obs.observed_count(), 2);
        assert_eq!(FirstObservation::new(0).observed_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "wider than layout")]
    fn wide_report_panics() {
        let mut obs = FirstObservation::new(1);
        obs.record(0, &[1, 2]);
    }
}
