//! Deterministic deployment health monitoring over epoch snapshots.
//!
//! The paper's community deployment runs unattended for weeks; the
//! operator's first question is not "which predicate is the bug?" but
//! "is the feedback stream still healthy enough to trust?".  This
//! module derives per-epoch **indicators** from consecutive
//! [`EpochSnapshot`]s — ingest rate, rejection and corruption ratios,
//! stale-version share, elimination-survivor churn, and detection-stall
//! streaks — and evaluates them with threshold detectors smoothed by an
//! integer EWMA, emitting typed [`HealthEvent`]s.
//!
//! # Determinism discipline
//!
//! Everything here is a pure function of the snapshot sequence:
//!
//! * ratios are integer **per-mille** (`‰`) values with round-half-up
//!   division — no floats anywhere, so renders diff byte-identically
//!   across platforms and `--jobs` counts;
//! * the EWMA baseline is integer: `ewma' = (num·x + (den−num)·ewma
//!   + den/2) / den` with configurable `num/den` smoothing;
//! * detectors are **edge-triggered**: an event fires once when its
//!   condition first becomes true and re-arms only after the condition
//!   clears, so a sustained storm yields exactly one event;
//! * epochs close on *run counts* (see [`EpochAggregator`]), never wall
//!   clocks, so two runs that fold the same community stream see the
//!   same indicator sequence regardless of scheduling.
//!
//! Because epochs close every `epoch_len` accepted runs, the per-epoch
//! run delta is constant by construction — so "ingest rate" is reported
//! as an indicator (runs and delivered batches per epoch) but has no
//! drop detector; the interesting rate anomalies surface through the
//! rejection, corruption, and stall detectors instead.

use crate::epoch::{EpochAggregator, EpochSnapshot};
use cbi_telemetry::Registry;
use std::fmt;

/// Thresholds and smoothing for the health detectors.
///
/// All ratios are integer per-mille (`250` ⇒ 25.0%).  The EWMA weight
/// is `ewma_num / ewma_den` per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// EWMA numerator (weight of the newest observation).
    pub ewma_num: u64,
    /// EWMA denominator.
    pub ewma_den: u64,
    /// Epochs to observe before any detector may fire.
    pub warmup_epochs: usize,
    /// Corruption share of committed batches (‰) that trips
    /// [`HealthEvent::CorruptionSpike`].
    pub corruption_spike_pm: u64,
    /// Rejection share of delivered batches (‰) that trips
    /// [`HealthEvent::RejectionSpike`].
    pub rejection_spike_pm: u64,
    /// Stale share of delivered batches (‰) that trips
    /// [`HealthEvent::StaleSurge`].
    pub stale_surge_pm: u64,
    /// Consecutive epochs without detection progress that trip
    /// [`HealthEvent::DetectionStalled`].
    pub stall_epochs: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            ewma_num: 1,
            ewma_den: 4,
            warmup_epochs: 1,
            corruption_spike_pm: 150,
            rejection_spike_pm: 300,
            stale_surge_pm: 250,
            stall_epochs: 3,
        }
    }
}

impl HealthConfig {
    /// Validates the smoothing weight (`0 < num <= den`).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate EWMA weight or a zero stall horizon.
    pub fn validate(&self) {
        assert!(
            self.ewma_num > 0 && self.ewma_num <= self.ewma_den,
            "EWMA weight must satisfy 0 < num <= den (got {}/{})",
            self.ewma_num,
            self.ewma_den
        );
        assert!(self.stall_epochs > 0, "stall horizon must be nonzero");
    }
}

/// Integer per-mille ratio with round-half-up division; 0 when the
/// denominator is 0.
pub fn per_mille(part: u64, whole: u64) -> u64 {
    (1000 * part + whole / 2).checked_div(whole).unwrap_or(0)
}

/// Derived, integer-only indicators for one closed epoch.
///
/// Deltas are against the previous epoch (or zero state for epoch 0);
/// ratios are per-mille of that epoch's own traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochIndicators {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Runs folded this epoch.
    pub runs: u64,
    /// Batches delivered this epoch (committed + rejected).
    pub delivered: u64,
    /// Batches committed this epoch.
    pub accepted: u64,
    /// Rejected share of delivered batches (‰).
    pub rejected_pm: u64,
    /// Corrupt-but-decodable share of committed batches (‰).
    pub corrupt_pm: u64,
    /// Stale-rejection share of delivered batches (‰).
    pub stale_pm: u64,
    /// EWMA baseline of `corrupt_pm` *before* this epoch folded in.
    pub ewma_corrupt_pm: u64,
    /// EWMA baseline of `rejected_pm` *before* this epoch folded in.
    pub ewma_rejected_pm: u64,
    /// Absolute change in elimination-survivor count since last epoch.
    pub survivor_churn: u64,
    /// Consecutive epochs (including this one) without detection
    /// progress; 0 when this epoch made progress.
    pub stalled_epochs: u64,
}

/// A typed anomaly detected in the epoch stream.
///
/// Events carry only integers, and [`Display`](fmt::Display) renders
/// them integer-only, so emitted event logs are golden-diffable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// Corrupt-but-decodable share of committed batches crossed the
    /// threshold.
    CorruptionSpike {
        /// Epoch the spike onset was detected in.
        epoch: usize,
        /// Corruption share this epoch (‰).
        corrupt_pm: u64,
        /// EWMA baseline before this epoch (‰).
        ewma_pm: u64,
    },
    /// Rejected share of delivered batches crossed the threshold.
    RejectionSpike {
        /// Epoch the spike onset was detected in.
        epoch: usize,
        /// Rejection share this epoch (‰).
        rejected_pm: u64,
        /// EWMA baseline before this epoch (‰).
        ewma_pm: u64,
    },
    /// Stale-version rejections crossed the threshold share.
    StaleSurge {
        /// Epoch the surge onset was detected in.
        epoch: usize,
        /// Stale share this epoch (‰).
        stale_pm: u64,
    },
    /// No detection progress for the configured number of epochs.
    DetectionStalled {
        /// Epoch the stall horizon was reached in.
        epoch: usize,
        /// Length of the stall streak (epochs).
        stalled_epochs: u64,
    },
}

impl HealthEvent {
    /// The epoch the event fired in.
    pub fn epoch(&self) -> usize {
        match *self {
            HealthEvent::CorruptionSpike { epoch, .. }
            | HealthEvent::RejectionSpike { epoch, .. }
            | HealthEvent::StaleSurge { epoch, .. }
            | HealthEvent::DetectionStalled { epoch, .. } => epoch,
        }
    }

    /// A stable snake_case name, suitable as a metric label value.
    pub fn name(&self) -> &'static str {
        match self {
            HealthEvent::CorruptionSpike { .. } => "corruption_spike",
            HealthEvent::RejectionSpike { .. } => "rejection_spike",
            HealthEvent::StaleSurge { .. } => "stale_surge",
            HealthEvent::DetectionStalled { .. } => "detection_stalled",
        }
    }
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HealthEvent::CorruptionSpike {
                epoch,
                corrupt_pm,
                ewma_pm,
            } => write!(
                f,
                "epoch {epoch}: corruption spike ({corrupt_pm} pm of committed batches, ewma {ewma_pm} pm)"
            ),
            HealthEvent::RejectionSpike {
                epoch,
                rejected_pm,
                ewma_pm,
            } => write!(
                f,
                "epoch {epoch}: rejection spike ({rejected_pm} pm of delivered batches, ewma {ewma_pm} pm)"
            ),
            HealthEvent::StaleSurge { epoch, stale_pm } => write!(
                f,
                "epoch {epoch}: stale-version surge ({stale_pm} pm of delivered batches)"
            ),
            HealthEvent::DetectionStalled {
                epoch,
                stalled_epochs,
            } => write!(
                f,
                "epoch {epoch}: detection stalled ({stalled_epochs} epochs without progress)"
            ),
        }
    }
}

/// Evaluates the health detectors over a stream of epoch snapshots.
///
/// Feed cumulative snapshots in epoch order via
/// [`observe`](HealthMonitor::observe); the monitor derives per-epoch
/// indicators, updates its EWMA baselines, and returns any events whose
/// onset this epoch triggered.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    target_tracked: bool,
    prev: Option<EpochSnapshot>,
    ewma_corrupt_pm: u64,
    ewma_rejected_pm: u64,
    corruption_active: bool,
    rejection_active: bool,
    stale_active: bool,
    stalled_epochs: u64,
    epochs_seen: usize,
    indicators: Vec<EpochIndicators>,
    events: Vec<HealthEvent>,
}

impl HealthMonitor {
    /// A monitor with the given thresholds.  `target_tracked` selects
    /// the stall definition: when true, progress means the tracked
    /// target predicate has been detected (latency known); when false,
    /// progress means the observed-counter or survivor counts moved.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`HealthConfig`].
    pub fn new(config: HealthConfig, target_tracked: bool) -> HealthMonitor {
        config.validate();
        HealthMonitor {
            config,
            target_tracked,
            prev: None,
            ewma_corrupt_pm: 0,
            ewma_rejected_pm: 0,
            corruption_active: false,
            rejection_active: false,
            stale_active: false,
            stalled_epochs: 0,
            epochs_seen: 0,
            indicators: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Folds one epoch snapshot; returns events whose onset fired here.
    pub fn observe(&mut self, snap: &EpochSnapshot) -> Vec<HealthEvent> {
        let ind = self.indicators_for(snap);
        let mut fired = Vec::new();
        let armed = self.epochs_seen >= self.config.warmup_epochs;

        let corrupt_hot = ind.corrupt_pm >= self.config.corruption_spike_pm;
        if armed && corrupt_hot && !self.corruption_active {
            fired.push(HealthEvent::CorruptionSpike {
                epoch: ind.epoch,
                corrupt_pm: ind.corrupt_pm,
                ewma_pm: ind.ewma_corrupt_pm,
            });
        }
        self.corruption_active = armed && corrupt_hot;

        let reject_hot = ind.rejected_pm >= self.config.rejection_spike_pm;
        if armed && reject_hot && !self.rejection_active {
            fired.push(HealthEvent::RejectionSpike {
                epoch: ind.epoch,
                rejected_pm: ind.rejected_pm,
                ewma_pm: ind.ewma_rejected_pm,
            });
        }
        self.rejection_active = armed && reject_hot;

        let stale_hot = ind.stale_pm >= self.config.stale_surge_pm;
        if armed && stale_hot && !self.stale_active {
            fired.push(HealthEvent::StaleSurge {
                epoch: ind.epoch,
                stale_pm: ind.stale_pm,
            });
        }
        self.stale_active = armed && stale_hot;

        // The stall detector fires exactly when the streak reaches the
        // horizon; a longer streak stays silent until progress resets it.
        if armed && ind.stalled_epochs == self.config.stall_epochs {
            fired.push(HealthEvent::DetectionStalled {
                epoch: ind.epoch,
                stalled_epochs: ind.stalled_epochs,
            });
        }

        // Fold this epoch into the baselines after the decision.
        self.ewma_corrupt_pm = ewma(
            self.ewma_corrupt_pm,
            ind.corrupt_pm,
            self.config.ewma_num,
            self.config.ewma_den,
        );
        self.ewma_rejected_pm = ewma(
            self.ewma_rejected_pm,
            ind.rejected_pm,
            self.config.ewma_num,
            self.config.ewma_den,
        );
        self.epochs_seen += 1;
        self.prev = Some(snap.clone());
        self.indicators.push(ind);
        self.events.extend(fired.iter().copied());
        fired
    }

    /// Folds a whole snapshot sequence; returns all events fired.
    pub fn observe_all(&mut self, snaps: &[EpochSnapshot]) -> Vec<HealthEvent> {
        let mut fired = Vec::new();
        for s in snaps {
            fired.extend(self.observe(s));
        }
        fired
    }

    /// Indicators derived so far, one per observed epoch.
    pub fn indicators(&self) -> &[EpochIndicators] {
        &self.indicators
    }

    /// Every event fired so far, in epoch order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    fn indicators_for(&mut self, snap: &EpochSnapshot) -> EpochIndicators {
        let zero = (0u64, 0u64, 0u64, 0u64, 0u64, 0usize);
        let (p_runs, p_batches, p_rejected, p_corrupt, p_stale, p_survivors) = match &self.prev {
            Some(p) => (
                p.runs,
                p.batches,
                p.rejected_batches,
                p.corrupt_batches,
                p.stale_batches,
                p.survivors,
            ),
            None => zero,
        };
        let runs = snap.runs.saturating_sub(p_runs);
        let accepted = snap.batches.saturating_sub(p_batches);
        let rejected = snap.rejected_batches.saturating_sub(p_rejected);
        let corrupt = snap.corrupt_batches.saturating_sub(p_corrupt);
        let stale = snap.stale_batches.saturating_sub(p_stale);
        let delivered = accepted + rejected;

        let progressed = if self.target_tracked {
            snap.target_latency.is_some()
        } else {
            self.prev.is_none()
                || snap.observed != self.prev.as_ref().map_or(0, |p| p.observed)
                || snap.survivors != p_survivors
        };
        self.stalled_epochs = if progressed {
            0
        } else {
            self.stalled_epochs + 1
        };

        EpochIndicators {
            epoch: snap.epoch,
            runs,
            delivered,
            accepted,
            rejected_pm: per_mille(rejected, delivered),
            corrupt_pm: per_mille(corrupt, accepted),
            stale_pm: per_mille(stale, delivered),
            ewma_corrupt_pm: self.ewma_corrupt_pm,
            ewma_rejected_pm: self.ewma_rejected_pm,
            survivor_churn: snap.survivors.abs_diff(p_survivors) as u64,
            stalled_epochs: self.stalled_epochs,
        }
    }
}

/// Integer EWMA step with round-half-up: `(num·x + (den−num)·ewma +
/// den/2) / den`.
fn ewma(prev: u64, x: u64, num: u64, den: u64) -> u64 {
    (num * x + (den - num) * prev + den / 2) / den
}

/// Renders the monitor's indicator stream as an aligned, integer-only
/// health table, with events listed beneath.  Byte-identical across
/// `--jobs` whenever the snapshot stream is.
pub fn render_health(monitor: &HealthMonitor) -> String {
    let mut out = String::new();
    out.push_str("health indicators (per epoch, ratios in per-mille):\n");
    out.push_str(
        "  epoch  runs     delivered  accepted  rej_pm  corr_pm  stale_pm  churn  stall\n",
    );
    for i in monitor.indicators() {
        out.push_str(&format!(
            "  {:<5}  {:<7}  {:<9}  {:<8}  {:<6}  {:<7}  {:<8}  {:<5}  {}\n",
            i.epoch,
            i.runs,
            i.delivered,
            i.accepted,
            i.rejected_pm,
            i.corrupt_pm,
            i.stale_pm,
            i.survivor_churn,
            i.stalled_epochs,
        ));
    }
    if monitor.events().is_empty() {
        out.push_str("health events: none\n");
    } else {
        out.push_str(&format!("health events ({}):\n", monitor.events().len()));
        for e in monitor.events() {
            out.push_str(&format!("  {e}\n"));
        }
    }
    out
}

/// Builds an epoch-keyed metric [`Registry`] from an aggregator's
/// snapshots and a monitor's event stream — the single export surface
/// behind both `--prom-out` and `--timeline-out`.
///
/// Counters are cumulative per snapshot; gauges are instantaneous
/// levels sampled at each epoch boundary.  Everything is integer.
pub fn health_registry(agg: &EpochAggregator, monitor: &HealthMonitor) -> Registry {
    let mut reg = Registry::new();
    for snap in agg.snapshots() {
        let epoch = snap.epoch as u64;
        reg.record_counter("cbi_runs_total", &[], epoch, snap.runs);
        reg.record_counter("cbi_failures_total", &[], epoch, snap.failures);
        reg.record_counter(
            "cbi_batches_total",
            &[("outcome", "accepted")],
            epoch,
            snap.batches,
        );
        reg.record_counter(
            "cbi_batches_total",
            &[("outcome", "rejected")],
            epoch,
            snap.rejected_batches,
        );
        reg.record_counter(
            "cbi_batches_corrupt_total",
            &[],
            epoch,
            snap.corrupt_batches,
        );
        reg.record_counter("cbi_batches_stale_total", &[], epoch, snap.stale_batches);
        reg.record_counter("cbi_retries_total", &[], epoch, snap.retries);
        reg.record_counter("cbi_wire_bytes_total", &[], epoch, snap.bytes);
        for (kind, count) in &snap.rejected_by_kind {
            reg.record_counter(
                "cbi_batch_rejections_total",
                &[("kind", kind.name())],
                epoch,
                *count,
            );
        }
        for (cohort, stats) in &snap.cohorts {
            let labels = [("cohort", cohort.as_str())];
            reg.record_counter("cbi_cohort_batches_total", &labels, epoch, stats.batches);
            reg.record_counter("cbi_cohort_bytes_total", &labels, epoch, stats.bytes);
            reg.record_counter("cbi_cohort_corrupt_total", &labels, epoch, stats.corrupt);
            reg.record_counter("cbi_cohort_rejected_total", &labels, epoch, stats.rejected);
            reg.record_counter("cbi_cohort_retries_total", &labels, epoch, stats.retries);
        }
        reg.record_gauge("cbi_survivors", &[], epoch, snap.survivors as i64);
        reg.record_gauge("cbi_observed_counters", &[], epoch, snap.observed as i64);
        if let Some(latency) = snap.target_latency {
            reg.record_gauge("cbi_target_latency_runs", &[], epoch, latency as i64);
        }
        if let Some(rank) = snap.target_rank {
            reg.record_gauge("cbi_target_rank", &[], epoch, rank as i64);
        }
    }
    // Health events as cumulative per-kind counters, stamped at each
    // epoch boundary so the timeline shows when each total moved.
    let kinds = [
        "corruption_spike",
        "rejection_spike",
        "stale_surge",
        "detection_stalled",
    ];
    for snap in agg.snapshots() {
        let epoch = snap.epoch as u64;
        for kind in kinds {
            let upto = monitor
                .events()
                .iter()
                .filter(|e| e.name() == kind && e.epoch() <= snap.epoch)
                .count() as u64;
            reg.record_counter("cbi_health_events_total", &[("kind", kind)], epoch, upto);
        }
    }
    for i in monitor.indicators() {
        let epoch = i.epoch as u64;
        reg.record_gauge("cbi_corrupt_pm", &[], epoch, i.corrupt_pm as i64);
        reg.record_gauge("cbi_rejected_pm", &[], epoch, i.rejected_pm as i64);
        reg.record_gauge("cbi_stale_pm", &[], epoch, i.stale_pm as i64);
        reg.record_gauge("cbi_stalled_epochs", &[], epoch, i.stalled_epochs as i64);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A cumulative snapshot builder for detector tests.
    fn snap(
        epoch: usize,
        runs: u64,
        batches: u64,
        rejected: u64,
        corrupt: u64,
        stale: u64,
        survivors: usize,
    ) -> EpochSnapshot {
        EpochSnapshot {
            epoch,
            runs,
            failures: 0,
            observed: 1 + epoch, // monotone progress unless frozen by caller
            survivors,
            target_latency: None,
            target_rank: None,
            bytes: batches * 100,
            batches,
            rejected_batches: rejected,
            stale_batches: stale,
            corrupt_batches: corrupt,
            retries: 0,
            rejected_by_kind: BTreeMap::new(),
            cohorts: BTreeMap::new(),
        }
    }

    #[test]
    fn per_mille_rounds_half_up() {
        assert_eq!(per_mille(0, 0), 0);
        assert_eq!(per_mille(1, 2), 500);
        assert_eq!(per_mille(1, 3), 333);
        assert_eq!(per_mille(2, 3), 667);
        assert_eq!(per_mille(5, 5), 1000);
    }

    #[test]
    fn ewma_is_integer_and_converges() {
        let mut v = 0;
        for _ in 0..64 {
            v = ewma(v, 1000, 1, 4);
        }
        assert!(v >= 998, "converges toward the input: {v}");
        assert_eq!(ewma(1000, 1000, 1, 4), 1000, "fixed point");
    }

    #[test]
    fn sustained_corruption_storm_fires_exactly_once() {
        let mut m = HealthMonitor::new(HealthConfig::default(), false);
        // Epoch 0: clean warmup.  Epochs 1..5: 40% of committed batches
        // corrupt, every epoch.  Edge triggering must yield ONE event.
        m.observe(&snap(0, 100, 10, 0, 0, 0, 5));
        for e in 1..=5usize {
            let batches = 10 * (e as u64 + 1);
            m.observe(&snap(
                e,
                100 * (e as u64 + 1),
                batches,
                0,
                batches * 2 / 5,
                0,
                5,
            ));
        }
        let spikes: Vec<&HealthEvent> = m
            .events()
            .iter()
            .filter(|e| matches!(e, HealthEvent::CorruptionSpike { .. }))
            .collect();
        assert_eq!(spikes.len(), 1, "events: {:?}", m.events());
        assert_eq!(spikes[0].epoch(), 1, "onset epoch");
    }

    #[test]
    fn corruption_rearms_after_clearing() {
        let config = HealthConfig {
            warmup_epochs: 0,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, false);
        // Storm (epoch 0), clean (1), storm again (2): two onsets.
        m.observe(&snap(0, 100, 10, 0, 5, 0, 5));
        m.observe(&snap(1, 200, 30, 0, 5, 0, 5)); // 0/20 corrupt this epoch
        m.observe(&snap(2, 300, 40, 0, 10, 0, 5)); // 5/10 corrupt
        let spikes = m
            .events()
            .iter()
            .filter(|e| matches!(e, HealthEvent::CorruptionSpike { .. }))
            .count();
        assert_eq!(spikes, 2, "events: {:?}", m.events());
    }

    #[test]
    fn warmup_suppresses_detectors() {
        let config = HealthConfig {
            warmup_epochs: 10,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, false);
        for e in 0..5usize {
            let b = 10 * (e as u64 + 1);
            m.observe(&snap(e, 100, b, b, b / 2, b / 2, 5));
        }
        assert!(m.events().is_empty(), "events: {:?}", m.events());
        assert_eq!(m.indicators().len(), 5, "indicators still derive");
    }

    #[test]
    fn stale_and_rejection_detectors_fire() {
        let config = HealthConfig {
            warmup_epochs: 0,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, false);
        // 10 delivered: 4 rejected, 3 of them stale.
        let fired = m.observe(&snap(0, 100, 6, 4, 0, 3, 5));
        assert!(
            fired.iter().any(|e| matches!(
                e,
                HealthEvent::RejectionSpike {
                    rejected_pm: 400,
                    ..
                }
            )),
            "{fired:?}"
        );
        assert!(
            fired
                .iter()
                .any(|e| matches!(e, HealthEvent::StaleSurge { stale_pm: 300, .. })),
            "{fired:?}"
        );
    }

    #[test]
    fn detection_stall_fires_once_at_horizon() {
        let config = HealthConfig {
            warmup_epochs: 0,
            stall_epochs: 3,
            ..HealthConfig::default()
        };
        // Target tracked but never detected: every epoch is stalled.
        let mut m = HealthMonitor::new(config, true);
        for e in 0..6usize {
            m.observe(&snap(e, 100 * (e as u64 + 1), 10, 0, 0, 0, 5));
        }
        let stalls: Vec<&HealthEvent> = m
            .events()
            .iter()
            .filter(|e| matches!(e, HealthEvent::DetectionStalled { .. }))
            .collect();
        assert_eq!(stalls.len(), 1, "{:?}", m.events());
        assert_eq!(stalls[0].epoch(), 2, "streak 3 reached at epoch 2");
    }

    #[test]
    fn stall_resets_on_detection() {
        let config = HealthConfig {
            warmup_epochs: 0,
            stall_epochs: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, true);
        for e in 0..2usize {
            m.observe(&snap(e, 100, 10, 0, 0, 0, 5));
        }
        let mut detected = snap(2, 300, 10, 0, 0, 0, 5);
        detected.target_latency = Some(250);
        m.observe(&detected);
        assert!(m.events().is_empty(), "{:?}", m.events());
        assert_eq!(m.indicators()[2].stalled_epochs, 0);
    }

    #[test]
    fn events_render_integer_only() {
        let events = [
            HealthEvent::CorruptionSpike {
                epoch: 3,
                corrupt_pm: 417,
                ewma_pm: 36,
            },
            HealthEvent::RejectionSpike {
                epoch: 4,
                rejected_pm: 350,
                ewma_pm: 100,
            },
            HealthEvent::StaleSurge {
                epoch: 5,
                stale_pm: 280,
            },
            HealthEvent::DetectionStalled {
                epoch: 9,
                stalled_epochs: 3,
            },
        ];
        for e in events {
            let text = e.to_string();
            assert!(!text.contains('.'), "{text}");
            assert!(text.starts_with(&format!("epoch {}", e.epoch())), "{text}");
        }
    }

    #[test]
    fn render_health_is_integer_only() {
        let mut m = HealthMonitor::new(HealthConfig::default(), false);
        m.observe(&snap(0, 100, 10, 3, 1, 1, 5));
        m.observe(&snap(1, 200, 15, 9, 4, 4, 7));
        let text = render_health(&m);
        assert!(text.contains("health indicators"), "{text}");
        assert!(text.contains("health events"), "{text}");
        assert!(!text.contains('.'), "{text}");
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn bad_ewma_weight_panics() {
        let _ = HealthMonitor::new(
            HealthConfig {
                ewma_num: 5,
                ewma_den: 4,
                ..HealthConfig::default()
            },
            false,
        );
    }
}
