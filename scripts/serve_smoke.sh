#!/usr/bin/env bash
# Production ingest smoke test.
#
# Drives a heterogeneous seeded fleet (mixed densities, variant and
# stale binaries, lossy channel, dropped acks) over real TCP against
# `cbi serve`, twice: once with 1 analyzer shard and once with 4.  The
# server-side canonical analyses must be byte-identical.  Then the
# crash drill: a journaled server is kill -9'd mid-ingest, restarted
# with --resume (at a different shard count), and the same seeded fleet
# retransmits everything — idempotent dedup plus journal replay must
# land on the exact same analysis as the uninterrupted run.
#
# Usage: scripts/serve_smoke.sh [path-to-cbi-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CBI="${1:-target/release/cbi}"
PROG=examples/profile_demo.mc
INPUTS=examples/profile_demo_inputs.txt
OUT="${SMOKE_OUT:-smoke-artifacts}"
mkdir -p "$OUT"

CLIENTS=12
RUNS=6000

# Whatever exit path we take (including set -e aborts), never leave a
# background server or fleet running.
SERVER=""
FLEET=""
cleanup() {
  [ -n "${SERVER:-}" ] && kill "$SERVER" 2>/dev/null || true
  [ -n "${FLEET:-}" ] && kill "$FLEET" 2>/dev/null || true
}
trap cleanup EXIT

# start_server <stdout-file> [extra serve flags...] — backgrounds the
# server, waits for its bound address, exports ADDR/SERVER.
start_server() {
  local txt=$1
  shift
  "$CBI" serve "$PROG" --scheme checks --addr 127.0.0.1:0 \
    --max-clients "$CLIENTS" --epoch-len 150 --mode eliminate "$@" \
    >"$txt" 2>>"$OUT/serve_smoke.log" &
  SERVER=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$txt" 2>/dev/null || true)
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "FAIL: server never reported a bound address" >&2
    cat "$OUT/serve_smoke.log" >&2 || true
    exit 1
  fi
}

# The same seeded storm every time: what reaches the server is
# deterministic, so its analysis can be diffed byte for byte.
run_fleet() {
  "$CBI" fleet "$PROG" "$INPUTS" --serve "$1" \
    --scheme checks --clients "$CLIENTS" --runs "$RUNS" --batch-size 8 \
    --epoch-len 150 --densities 10:3,100:1 \
    --variant-fraction 0.25 --stale-fraction 0.2 \
    --drop 0.15 --truncate 0.1 --bit-flip 0.05 \
    --ack-drop 0.25 --streams 4 --seed 42 \
    --summary-out "$2"
}

echo "--- sharded determinism: 1 shard vs 4 ---"
start_server "$OUT/serve_s1.txt" --shards 1
run_fleet "$ADDR" "$OUT/fleet_s1.txt"
wait "$SERVER"
SERVER=""
tail -n +2 "$OUT/serve_s1.txt" >"$OUT/serve_analysis_s1.txt"

start_server "$OUT/serve_s4.txt" --shards 4
run_fleet "$ADDR" "$OUT/fleet_s4.txt"
wait "$SERVER"
SERVER=""
tail -n +2 "$OUT/serve_s4.txt" >"$OUT/serve_analysis_s4.txt"

diff -u "$OUT/serve_analysis_s1.txt" "$OUT/serve_analysis_s4.txt"
# The client-side channel accounting is seed-pure too.
diff -u "$OUT/fleet_s1.txt" "$OUT/fleet_s4.txt"

echo "--- crash drill: kill -9 mid-ingest, resume, retransmit ---"
JOURNAL="$OUT/ingest.cbij"
rm -f "$JOURNAL"
start_server "$OUT/serve_crash.txt" --shards 1 --journal "$JOURNAL" --fsync every:8
run_fleet "$ADDR" "$OUT/fleet_crash.txt" &
FLEET=$!
# Let the journal absorb part of the stream, then pull the plug.
for _ in $(seq 1 500); do
  size=$(stat -c %s "$JOURNAL" 2>/dev/null || echo 0)
  [ "$size" -gt 2048 ] && break
  sleep 0.02
done
kill -9 "$SERVER" 2>/dev/null || true
SERVER=""
# The fleet's run was cut short; its failure is the expected outcome.
wait "$FLEET" 2>/dev/null || true
FLEET=""

# Restart from the journal — at a different shard count for good
# measure — and run the full seeded sweep again.  Replayed batches
# dedup as duplicates; everything lost in the crash recommits.
start_server "$OUT/serve_resume.txt" --shards 4 --resume "$JOURNAL" --fsync every:8
run_fleet "$ADDR" "$OUT/fleet_resume.txt"
wait "$SERVER"
SERVER=""
tail -n +2 "$OUT/serve_resume.txt" >"$OUT/serve_analysis_resume.txt"

echo "--- resumed analysis vs uninterrupted ---"
diff -u "$OUT/serve_analysis_s1.txt" "$OUT/serve_analysis_resume.txt"

echo "PASS: analysis is byte-identical at shards 1 and 4, and across kill -9 + resume"
