#!/usr/bin/env bash
# Corpus ground-truth smoke test.
#
# Generates a small fault-injection corpus at a fixed seed, evaluates it
# at 1/100 sampling, and diffs the integer-only score summary against the
# checked-in golden file.  Any drift in generation, instrumentation
# layout, campaign scheduling, or elimination shows up as a diff.
#
# Usage: scripts/corpus_smoke.sh [path-to-cbi-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CBI="${1:-target/release/cbi}"
OUT="${SMOKE_OUT:-smoke-artifacts}"
GOLDEN=tests/golden/corpus_smoke_summary.txt
mkdir -p "$OUT"

"$CBI" corpus generate "$OUT/corpus" --size 25 --seed 7 --trials 32
"$CBI" corpus evaluate "$OUT/corpus" --densities 100 --jobs 4 \
  --out "$OUT/corpus_report.txt" --summary-out "$OUT/corpus_summary.txt"

echo "--- score summary vs golden ---"
diff -u "$GOLDEN" "$OUT/corpus_summary.txt"

echo "PASS: corpus scores match the golden summary"
