#!/usr/bin/env bash
# Loopback remote-collection smoke test.
#
# Starts `cbi serve` on an ephemeral port, runs a sampled campaign that
# transmits its reports over TCP while also archiving them locally, then
# checks that the server-side analyses (streaming elimination + batch
# regression) match the in-process `cbi analyze` of the local archive
# line for line, and that the binary spool replays to the same result.
#
# Usage: scripts/loopback_smoke.sh [path-to-cbi-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CBI="${1:-target/release/cbi}"
PROG=examples/profile_demo.mc
INPUTS=examples/profile_demo_inputs.txt
OUT="${SMOKE_OUT:-smoke-artifacts}"
mkdir -p "$OUT"

# Whatever exit path we take (including set -e aborts), never leave a
# background server running.
SERVER=""
cleanup() {
  [ -n "${SERVER:-}" ] && kill "$SERVER" 2>/dev/null || true
}
trap cleanup EXIT

# The server exits after one connection; stdout carries the bound
# address followed by the analysis results.
"$CBI" serve "$PROG" --scheme returns --addr 127.0.0.1:0 --max-conns 1 \
  --mode both --spool "$OUT/reports.cbr" \
  >"$OUT/serve.txt" 2>"$OUT/serve.log" &
SERVER=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' "$OUT/serve.txt" 2>/dev/null || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "FAIL: server never reported a bound address" >&2
  cat "$OUT/serve.log" >&2 || true
  exit 1
fi
echo "server listening on $ADDR"

# Sampled campaign: transmit over loopback, archive locally as JSONL.
"$CBI" campaign "$PROG" "$INPUTS" --scheme returns --density 10 --jobs 4 \
  --transmit "$ADDR" --out "$OUT/reports.jsonl"

wait "$SERVER"
SERVER=""

# Split the server transcript into its elimination and regression blocks.
sed -n '/^universal falsehood:/,/^lambda /p' "$OUT/serve.txt" | sed '$d' \
  >"$OUT/serve_elim.txt"
sed -n '/^lambda /,$p' "$OUT/serve.txt" >"$OUT/serve_regress.txt"

# In-process analyses of the locally archived reports.
"$CBI" analyze "$OUT/reports.jsonl" "$PROG" --scheme returns \
  --mode eliminate >"$OUT/local_elim.txt"
"$CBI" analyze "$OUT/reports.jsonl" "$PROG" --scheme returns \
  --mode regress >"$OUT/local_regress.txt"
# The binary spool the server kept must replay to the same survivors.
"$CBI" analyze "$OUT/reports.cbr" "$PROG" --scheme returns \
  --mode eliminate >"$OUT/spool_elim.txt"

echo "--- elimination (server vs in-process) ---"
diff -u "$OUT/serve_elim.txt" "$OUT/local_elim.txt"
echo "--- elimination (spool replay vs in-process) ---"
diff -u "$OUT/spool_elim.txt" "$OUT/local_elim.txt"
echo "--- regression (server vs in-process) ---"
diff -u "$OUT/serve_regress.txt" "$OUT/local_regress.txt"

echo "PASS: remote and in-process analyses agree"
