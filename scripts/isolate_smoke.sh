#!/usr/bin/env bash
# Multi-bug iterative isolation smoke test.
#
# Generates a small multi-bug corpus at a fixed seed, runs the §3.3
# isolation loop across two scorers at two sampling densities with
# --jobs 1 and --jobs 4, and diffs the integer-only summary against the
# checked-in golden file.  The two jobs settings must produce
# byte-identical summaries; any drift in planting, campaign scheduling,
# scoring arithmetic, or cluster attribution shows up as a diff.
#
# Usage: scripts/isolate_smoke.sh [path-to-cbi-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CBI="${1:-target/release/cbi}"
OUT="${SMOKE_OUT:-smoke-artifacts}"
GOLDEN=tests/golden/isolate_smoke_summary.txt
mkdir -p "$OUT"

"$CBI" corpus generate "$OUT/isolate-corpus" --size 2 --seed 31 --trials 48 --bugs 2

"$CBI" isolate --corpus "$OUT/isolate-corpus" --densities 1,10 \
  --scorers ochiai,tarantula --jobs 1 \
  --out "$OUT/isolate_report_j1.txt" --summary-out "$OUT/isolate_summary_j1.txt"
"$CBI" isolate --corpus "$OUT/isolate-corpus" --densities 1,10 \
  --scorers ochiai,tarantula --jobs 4 \
  --out "$OUT/isolate_report_j4.txt" --summary-out "$OUT/isolate_summary_j4.txt"

echo "--- jobs 1 vs jobs 4 ---"
diff -u "$OUT/isolate_report_j1.txt" "$OUT/isolate_report_j4.txt"

echo "--- isolation summary vs golden ---"
diff -u "$GOLDEN" "$OUT/isolate_summary_j1.txt"

echo "PASS: isolation summary matches the golden and is jobs-invariant"
