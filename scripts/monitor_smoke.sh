#!/usr/bin/env bash
# Deployment health-monitoring smoke test.
#
# Generates a small ground-truth corpus, drives a corrupt-channel fleet
# against one entry with the Prometheus/timeline exports on, and diffs
# the Prometheus snapshot against the checked-in golden file.  The same
# storm is replayed at --jobs 1 and --jobs 4 and every monitor surface —
# metrics exposition, epoch timeline, and the `cbi monitor` health
# table — must be byte-identical; the exposition must also stay
# integer-only so the diff is platform-stable.
#
# Usage: scripts/monitor_smoke.sh [path-to-cbi-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CBI="${1:-target/release/cbi}"
OUT="${SMOKE_OUT:-smoke-artifacts}"
GOLDEN=tests/golden/monitor_smoke_prom.txt
mkdir -p "$OUT"

"$CBI" corpus generate "$OUT/monitor-corpus" --size 5 --seed 11 --trials 24

fleet_args=(
  --corpus "$OUT/monitor-corpus" --pool 64
  --clients 10 --runs 500 --batch-size 8 --epoch-len 125
  --densities 5:1 --stale-fraction 0.2
  --drop 0.1 --truncate 0.1 --bit-flip 0.3
  --seed 99
)

"$CBI" fleet "${fleet_args[@]}" --jobs 4 \
  --summary-out "$OUT/monitor_fleet_summary.txt" \
  --prom-out "$OUT/monitor_fleet.prom" \
  --timeline-out "$OUT/monitor_fleet_timeline.jsonl"

echo "--- prometheus snapshot vs golden ---"
diff -u "$GOLDEN" "$OUT/monitor_fleet.prom"

if grep -q '\.' "$OUT/monitor_fleet.prom"; then
  echo "FAIL: prometheus snapshot is not integer-only" >&2
  exit 1
fi

# The same storm sharded differently must not change a byte.
"$CBI" fleet "${fleet_args[@]}" --jobs 1 \
  --summary-out "$OUT/monitor_fleet_summary_serial.txt" \
  --prom-out "$OUT/monitor_fleet_serial.prom" \
  --timeline-out "$OUT/monitor_fleet_timeline_serial.jsonl" 2>/dev/null
diff -u "$OUT/monitor_fleet.prom" "$OUT/monitor_fleet_serial.prom"
diff -u "$OUT/monitor_fleet_timeline.jsonl" "$OUT/monitor_fleet_timeline_serial.jsonl"

# The monitor's health table over the same storm: identical across
# --jobs, and the bit-flip storm must trip the corruption detector.
"$CBI" monitor "${fleet_args[@]}" --jobs 4 --health-out "$OUT/monitor_health.txt"
"$CBI" monitor "${fleet_args[@]}" --jobs 1 --health-out "$OUT/monitor_health_serial.txt" 2>/dev/null
diff -u "$OUT/monitor_health.txt" "$OUT/monitor_health_serial.txt"
grep -q "corruption spike" "$OUT/monitor_health.txt"

echo "PASS: monitor surfaces match the golden snapshot at jobs 1 and 4"
