#!/usr/bin/env bash
# Fleet simulation smoke test.
#
# Runs a small seeded community against the profile_demo bug: mixed
# sampling densities, single-function variant binaries, stale clients
# hitting the layout-hash handshake, and a lossy channel with retries —
# then diffs the integer-only fleet summary against the checked-in
# golden file.  Any drift in client profiling, VM scheduling, wire
# encoding, channel fault injection, ingest, or epoch aggregation shows
# up as a diff; the summary must also be byte-identical at any --jobs.
#
# Usage: scripts/fleet_smoke.sh [path-to-cbi-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CBI="${1:-target/release/cbi}"
OUT="${SMOKE_OUT:-smoke-artifacts}"
GOLDEN=tests/golden/fleet_smoke_summary.txt
mkdir -p "$OUT"

run_fleet() {
  "$CBI" fleet examples/profile_demo.mc examples/profile_demo_inputs.txt \
    --scheme checks --clients 12 --runs 600 --batch-size 8 --epoch-len 150 \
    --densities 10:3,100:1 --variant-fraction 0.25 --stale-fraction 0.2 \
    --drop 0.15 --truncate 0.1 --bit-flip 0.05 --target slot \
    --seed 42 --jobs "$1" --summary-out "$2"
}

run_fleet 4 "$OUT/fleet_summary.txt"
echo "--- fleet summary vs golden ---"
diff -u "$GOLDEN" "$OUT/fleet_summary.txt"

# The same storm sharded differently must not change a byte.
run_fleet 1 "$OUT/fleet_summary_serial.txt" 2>/dev/null
diff -u "$OUT/fleet_summary.txt" "$OUT/fleet_summary_serial.txt"

echo "PASS: fleet summary matches the golden file at jobs 1 and 4"
